#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace epi {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  EPI_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  EPI_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  EPI_REQUIRE(!xs.empty(), "quantile of empty sample");
  EPI_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level out of [0,1]: " << q);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double position = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  EPI_REQUIRE(xs.size() == ys.size(), "correlation length mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Ecdf::at(double x) const {
  const auto it = std::upper_bound(values.begin(), values.end(), x);
  const auto rank = static_cast<std::size_t>(it - values.begin());
  if (rank == 0) return 0.0;
  return probs[rank - 1];
}

Ecdf ecdf(std::vector<double> xs) {
  EPI_REQUIRE(!xs.empty(), "ecdf of empty sample");
  std::sort(xs.begin(), xs.end());
  Ecdf result;
  result.probs.resize(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    result.probs[i] = static_cast<double>(i + 1) / n;
  }
  result.values = std::move(xs);
  return result;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  auto sorted_quantile = [&xs](double q) {
    const double position = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(position);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = position - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.q25 = sorted_quantile(0.25);
  s.median = sorted_quantile(0.5);
  s.q75 = sorted_quantile(0.75);
  return s;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double value = bytes;
  while (value >= 1000.0 && unit < 5) {
    value /= 1000.0;  // decimal units, matching the paper's GB/TB figures
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%s", value, units[unit]);
  return buf;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  EPI_REQUIRE(a.size() == b.size(), "rmse length mismatch");
  EPI_REQUIRE(!a.empty(), "rmse of empty series");
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(a.size()));
}

std::vector<double> log_transform(std::span<const double> xs, double floor) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(std::log(std::max(x, floor)));
  return out;
}

}  // namespace epi
