// Descriptive statistics used across calibration, scheduling analysis and
// benchmark reporting (quantiles for forecast bands, CDFs for Fig 9
// utilization plots, correlation for Fig 15 posterior diagnostics).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace epi {

double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolated quantile of an UNSORTED sample, q in [0, 1].
double quantile(std::vector<double> xs, double q);

/// Median shorthand.
double median(std::vector<double> xs);

/// Pearson correlation; 0 if either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Empirical CDF evaluated on a copy of the sample: returns the sorted
/// sample values paired with cumulative probabilities (i+1)/n.
struct Ecdf {
  std::vector<double> values;  // sorted
  std::vector<double> probs;   // same length, increasing in (0, 1]

  /// P(X <= x) under the empirical distribution.
  double at(double x) const;
};

Ecdf ecdf(std::vector<double> xs);

/// Five-number + mean summary for report tables.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::vector<double> xs);

/// Formats a byte count as a human-readable string ("3.0TB", "200MB") —
/// used when printing Table I/II style data-volume rows.
std::string format_bytes(double bytes);

/// Root mean squared error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// log(x) safeguarded for incidence series (log(max(x, floor))).
std::vector<double> log_transform(std::span<const double> xs,
                                  double floor = 1.0);

}  // namespace epi
