// Wall-clock timing helper for benchmark harnesses and the partitioner's
// "cache saves over an hour" measurements.
#pragma once

#include <chrono>

namespace epi {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace epi
