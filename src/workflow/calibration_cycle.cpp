#include "workflow/calibration_cycle.hpp"

#include <algorithm>
#include <cmath>

#include "analytics/aggregate.hpp"
#include "epihiper/parallel.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace epi {

namespace {

/// Simulates one calibration configuration and returns the cumulative
/// confirmed-case series (state level) over `days`.
std::vector<double> simulate_config(const SyntheticRegion& region,
                                    const CellConfig& cell, Tick days,
                                    std::uint32_t replicate) {
  SimulationConfig sim_config = cell.make_sim_config(replicate);
  sim_config.num_ticks = days;
  const DiseaseModel model = covid_model(cell.disease);
  const SimOutput output =
      run_simulation(region.network, region.population, model, sim_config,
                     [&] { return cell.make_interventions(); });
  return aggregate_state_series(output, region.population, model, days,
                                AggregationTarget::kCumulativeConfirmed);
}

/// Runs `body` under transient-failure injection: failed attempts are
/// recorded and re-run (a replicate is a pure function of its config, so
/// the retry reproduces the identical trajectory). Gives up — and takes
/// the result of the final attempt — when the policy is exhausted.
template <typename Body>
auto with_sim_retries(const FaultInjector& faults, const RetryPolicy& policy,
                      std::uint64_t job_seq, ResilienceLedger& ledger,
                      Body&& body) {
  std::uint32_t attempt = 1;
  while (faults.sim_failure(job_seq, attempt) &&
         !policy.give_up(attempt, 0.0)) {
    ledger.record(FaultKind::kSimRetry, 0.0,
                  "prior/forecast job " + std::to_string(job_seq));
    ++attempt;
  }
  return body();
}

}  // namespace

CalibrationCycleResult run_calibration_cycle(
    const CalibrationCycleConfig& config) {
  EPI_REQUIRE(config.prior_configs >= 8, "prior design too small to emulate");
  CalibrationCycleResult result;
  const FaultInjector injector(config.faults);
  ResilienceLedger ledger;

  // --- Region and observed data -------------------------------------------
  SynthPopConfig pop_config;
  pop_config.region = config.region;
  pop_config.scale = config.scale;
  pop_config.seed = config.seed;
  const SyntheticRegion region = generate_region(pop_config);

  // The surveillance feed covers the whole outbreak from Jan 21; the
  // simulation starts at the moment its seeded exposures correspond to the
  // reported counts. We therefore (a) scale the full-population counts
  // down to the simulated population and (b) slide the observation window
  // so its first day matches the simulation's seeding level — the paper's
  // "county-level seeding derived from county-level confirmed case counts"
  // alignment, adapted to scaled populations.
  GroundTruthConfig truth_config;
  truth_config.seed = config.seed;
  truth_config.days =
      config.takeoff_search_days + config.calibration_days + config.horizon_days;
  truth_config.beta = config.truth_beta;
  truth_config.distancing_effect = config.truth_distancing_effect;
  truth_config.reporting_rate = config.truth_reporting_rate;
  truth_config.distancing_end_day = 1 << 28;  // distancing persists
  const StateGroundTruth truth =
      generate_state_ground_truth(config.region, truth_config);
  std::vector<double> scaled_cumulative = truth.cumulative_state();
  for (double& x : scaled_cumulative) x *= config.scale;

  const double seeded_persons = 15.0;  // 3 counties x 5 exposures at tick 0
  std::size_t offset = 0;
  while (offset + config.calibration_days + config.horizon_days <
             scaled_cumulative.size() &&
         scaled_cumulative[offset] < seeded_persons) {
    ++offset;
  }
  EPI_REQUIRE(scaled_cumulative[offset] >= seeded_persons,
              "surveillance series never reaches the seeding level at scale "
                  << config.scale
                  << "; increase scale or the truth epidemic intensity");
  result.observed_cumulative.assign(
      scaled_cumulative.begin() + static_cast<std::ptrdiff_t>(offset),
      scaled_cumulative.begin() +
          static_cast<std::ptrdiff_t>(offset + config.calibration_days));
  result.truth_extension.assign(
      scaled_cumulative.begin() + static_cast<std::ptrdiff_t>(offset),
      scaled_cumulative.begin() +
          static_cast<std::ptrdiff_t>(offset + config.calibration_days +
                                      config.horizon_days));

  // --- Prior design and its simulations ------------------------------------
  Rng design_rng = Rng(config.seed).derive({0x505249ULL});  // "PRI"
  result.prior_design = make_prior_design(calibration_parameter_ranges(),
                                          config.prior_configs, design_rng);
  Mat sim_outputs(config.prior_configs,
                  static_cast<std::size_t>(config.calibration_days));
  for (std::size_t i = 0; i < config.prior_configs; ++i) {
    const CellConfig cell = cell_from_calibration_point(
        config.region, static_cast<std::uint32_t>(i),
        result.prior_design.points[i], 1, config.calibration_days,
        config.seed);
    const auto series = with_sim_retries(
        injector, config.retry, i, ledger,
        [&] { return simulate_config(region, cell, config.calibration_days, 0); });
    const auto logged = log_transform(series);
    sim_outputs.set_row(i, logged);
  }
  EPI_INFO("calibration cycle: simulated " << config.prior_configs
                                           << " prior configs for "
                                           << config.region);

  // --- Replicate-noise covariance ------------------------------------------
  // EpiHiper is stochastic; a design point's output is one draw from a
  // distribution over trajectories. The production system handles this
  // with quantile-based emulation [18]; here we estimate the replicate
  // covariance empirically at the design-center configuration and hand it
  // to the likelihood, so the posterior is not overconfident.
  Mat replicate_cov;
  {
    ParamPoint center(result.prior_design.ranges.size());
    for (std::size_t d = 0; d < center.size(); ++d) {
      center[d] = (result.prior_design.ranges[d].lo +
                   result.prior_design.ranges[d].hi) /
                  2.0;
    }
    const std::size_t replicates = 6;
    std::vector<Vec> curves;
    for (std::size_t rep = 0; rep < replicates; ++rep) {
      const CellConfig cell = cell_from_calibration_point(
          config.region, 5000, center,
          static_cast<std::uint32_t>(replicates), config.calibration_days,
          config.seed);
      curves.push_back(log_transform(simulate_config(
          region, cell, config.calibration_days,
          static_cast<std::uint32_t>(rep))));
    }
    const auto t = static_cast<std::size_t>(config.calibration_days);
    Vec curve_mean(t, 0.0);
    for (const Vec& curve : curves) {
      for (std::size_t i = 0; i < t; ++i) curve_mean[i] += curve[i] / replicates;
    }
    replicate_cov = Mat(t, t);
    for (const Vec& curve : curves) {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          replicate_cov.at(i, j) += (curve[i] - curve_mean[i]) *
                                    (curve[j] - curve_mean[j]) /
                                    (replicates - 1);
        }
      }
    }
    // Shrink toward the diagonal: 6 replicates give a noisy rank-5
    // estimate; keep the marginal variances, damp the off-diagonals.
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < t; ++j) {
        if (i != j) replicate_cov.at(i, j) *= 0.7;
      }
    }
  }

  // --- Emulator-based Bayesian calibration ---------------------------------
  const Vec observed_log = log_transform(result.observed_cumulative);
  AgentCalibrator calibrator(result.prior_design, std::move(sim_outputs),
                             observed_log, config.seed,
                             std::move(replicate_cov));
  result.calibration =
      calibrator.calibrate(config.posterior_configs, config.mcmc);
  result.posterior_configs = result.calibration.posterior_configs;

  // --- Prediction: simulate posterior configs over the full horizon --------
  const Tick total_days = config.calibration_days + config.horizon_days;
  std::vector<std::vector<double>> forecast_curves;
  const std::size_t runs =
      std::min(config.prediction_runs, result.posterior_configs.size());
  forecast_curves.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    const CellConfig cell = cell_from_calibration_point(
        config.region, static_cast<std::uint32_t>(1000 + i),
        result.posterior_configs[i], 1, total_days, config.seed);
    forecast_curves.push_back(with_sim_retries(
        injector, config.retry, 1000 + i, ledger,
        [&] { return simulate_config(region, cell, total_days, 0); }));
  }
  if (!forecast_curves.empty()) {
    result.forecast = ensemble_band(forecast_curves, 0.95);
    result.forecast_coverage =
        band_coverage(result.forecast, result.truth_extension);
    EPI_INFO("calibration cycle: forecast coverage "
             << result.forecast_coverage);
  }
  result.resilience = ledger.summary();
  return result;
}

}  // namespace epi
