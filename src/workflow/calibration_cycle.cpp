#include "workflow/calibration_cycle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analytics/aggregate.hpp"
#include "epihiper/parallel.hpp"
#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "workflow/report_text.hpp"

namespace epi {

namespace {

/// Simulates one calibration configuration and returns the cumulative
/// confirmed-case series (state level) over `days`.
std::vector<double> simulate_config(const SyntheticRegion& region,
                                    const CellConfig& cell, Tick days,
                                    std::uint32_t replicate) {
  SimulationConfig sim_config = cell.make_sim_config(replicate);
  sim_config.num_ticks = days;
  const DiseaseModel model = covid_model(cell.disease);
  const SimOutput output =
      run_simulation(region.network, region.population, model, sim_config,
                     [&] { return cell.make_interventions(); });
  return aggregate_state_series(output, region.population, model, days,
                                AggregationTarget::kCumulativeConfirmed);
}

/// Runs `body` under transient-failure injection: failed attempts are
/// recorded and re-run (a replicate is a pure function of its config, so
/// the retry reproduces the identical trajectory). Gives up — and takes
/// the result of the final attempt — when the policy is exhausted.
template <typename Body>
auto with_sim_retries(const FaultInjector& faults, const RetryPolicy& policy,
                      std::uint64_t job_seq, ResilienceLedger& ledger,
                      Body&& body) {
  std::uint32_t attempt = 1;
  while (faults.sim_failure(job_seq, attempt) &&
         !policy.give_up(attempt, 0.0)) {
    ledger.record(FaultKind::kSimRetry, 0.0,
                  "prior/forecast job " + std::to_string(job_seq));
    ++attempt;
  }
  return body();
}

/// Executor configuration for one farm stage; the observability sinks
/// come from the (optional) session.
exec::ExecConfig farm_config(const CalibrationCycleConfig& config,
                             std::string label) {
  exec::ExecConfig farm;
  farm.jobs = config.jobs;
  farm.label = std::move(label);
  if (config.trace != nullptr) {
    farm.obs.trace = &config.trace->trace();
    farm.obs.metrics = &config.trace->metrics();
    farm.obs.deterministic_timing =
        config.trace->trace().deterministic_timing();
    farm.obs.flow = config.trace->flow();
  }
  return farm;
}

/// One farm task's output: its simulated (log) series plus the private
/// resilience ledger its retries were recorded into. Private ledgers are
/// merged into the cycle ledger in task-index order, so the merged event
/// stream is identical to the serial loop's regardless of completion
/// order.
struct FarmRun {
  std::vector<double> series;
  ResilienceLedger ledger;
};

}  // namespace

CyclePriorStage run_cycle_prior_stage(const CalibrationCycleConfig& config) {
  EPI_REQUIRE(config.prior_configs >= 8, "prior design too small to emulate");
  CyclePriorStage stage;
  const FaultInjector injector(config.faults);
  ResilienceLedger& ledger = stage.ledger;

  // --- Region and observed data -------------------------------------------
  SynthPopConfig pop_config;
  pop_config.region = config.region;
  pop_config.scale = config.scale;
  pop_config.seed = config.seed;
  stage.region = make_region(config.region_source, pop_config);
  const SyntheticRegion& region = *stage.region;

  // The surveillance feed covers the whole outbreak from Jan 21; the
  // simulation starts at the moment its seeded exposures correspond to the
  // reported counts. We therefore (a) scale the full-population counts
  // down to the simulated population and (b) slide the observation window
  // so its first day matches the simulation's seeding level — the paper's
  // "county-level seeding derived from county-level confirmed case counts"
  // alignment, adapted to scaled populations.
  GroundTruthConfig truth_config;
  truth_config.seed = config.seed;
  truth_config.days =
      config.takeoff_search_days + config.calibration_days + config.horizon_days;
  truth_config.beta = config.truth_beta;
  truth_config.distancing_effect = config.truth_distancing_effect;
  truth_config.reporting_rate = config.truth_reporting_rate;
  truth_config.distancing_end_day = 1 << 28;  // distancing persists
  const StateGroundTruth truth =
      generate_state_ground_truth(config.region, truth_config);
  std::vector<double> scaled_cumulative = truth.cumulative_state();
  for (double& x : scaled_cumulative) x *= config.scale;

  const double seeded_persons = 15.0;  // 3 counties x 5 exposures at tick 0
  std::size_t offset = 0;
  while (offset + config.calibration_days + config.horizon_days <
             scaled_cumulative.size() &&
         scaled_cumulative[offset] < seeded_persons) {
    ++offset;
  }
  EPI_REQUIRE(scaled_cumulative[offset] >= seeded_persons,
              "surveillance series never reaches the seeding level at scale "
                  << config.scale
                  << "; increase scale or the truth epidemic intensity");
  stage.observed_cumulative.assign(
      scaled_cumulative.begin() + static_cast<std::ptrdiff_t>(offset),
      scaled_cumulative.begin() +
          static_cast<std::ptrdiff_t>(offset + config.calibration_days));
  stage.truth_extension.assign(
      scaled_cumulative.begin() + static_cast<std::ptrdiff_t>(offset),
      scaled_cumulative.begin() +
          static_cast<std::ptrdiff_t>(offset + config.calibration_days +
                                      config.horizon_days));

  // --- Prior design and its simulations ------------------------------------
  Rng design_rng = Rng(config.seed).derive({0x505249ULL});  // "PRI"
  stage.prior_design = make_prior_design(calibration_parameter_ranges(),
                                         config.prior_configs, design_rng);
  Mat sim_outputs(config.prior_configs,
                  static_cast<std::size_t>(config.calibration_days));
  {
    // The farm: each design point is a pure function of (config, seed) —
    // the paper's embarrassingly parallel GPMSA design stage.
    const auto runs = exec::parallel_index_map(
        config.prior_configs,
        [&](std::size_t i) {
          const CellConfig cell = cell_from_calibration_point(
              config.region, static_cast<std::uint32_t>(i),
              stage.prior_design.points[i], 1, config.calibration_days,
              config.seed);
          FarmRun run;
          run.series = log_transform(with_sim_retries(
              injector, config.retry, i, run.ledger, [&] {
                return simulate_config(region, cell, config.calibration_days,
                                       0);
              }));
          return run;
        },
        farm_config(config, "prior"));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      ledger.merge(runs[i].ledger);
      sim_outputs.set_row(i, runs[i].series);
    }
  }
  EPI_INFO("calibration cycle: simulated " << config.prior_configs
                                           << " prior configs for "
                                           << config.region);

  // --- Replicate-noise covariance ------------------------------------------
  // EpiHiper is stochastic; a design point's output is one draw from a
  // distribution over trajectories. The production system handles this
  // with quantile-based emulation [18]; here we estimate the replicate
  // covariance empirically at the design-center configuration and hand it
  // to the likelihood, so the posterior is not overconfident.
  Mat replicate_cov;
  {
    ParamPoint center(stage.prior_design.ranges.size());
    for (std::size_t d = 0; d < center.size(); ++d) {
      center[d] = (stage.prior_design.ranges[d].lo +
                   stage.prior_design.ranges[d].hi) /
                  2.0;
    }
    const std::size_t replicates = 6;
    // Per-curve replicate runs at the design center — independent draws
    // distinguished only by their replicate index, so they farm out like
    // the design points do.
    const std::vector<Vec> curves = exec::parallel_index_map(
        replicates,
        [&](std::size_t rep) {
          const CellConfig cell = cell_from_calibration_point(
              config.region, 5000, center,
              static_cast<std::uint32_t>(replicates), config.calibration_days,
              config.seed);
          return log_transform(simulate_config(
              region, cell, config.calibration_days,
              static_cast<std::uint32_t>(rep)));
        },
        farm_config(config, "replicate"));
    const auto t = static_cast<std::size_t>(config.calibration_days);
    Vec curve_mean(t, 0.0);
    for (const Vec& curve : curves) {
      for (std::size_t i = 0; i < t; ++i) curve_mean[i] += curve[i] / replicates;
    }
    replicate_cov = Mat(t, t);
    for (const Vec& curve : curves) {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          replicate_cov.at(i, j) += (curve[i] - curve_mean[i]) *
                                    (curve[j] - curve_mean[j]) /
                                    (replicates - 1);
        }
      }
    }
    // Shrink toward the diagonal: 6 replicates give a noisy rank-5
    // estimate; keep the marginal variances, damp the off-diagonals.
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < t; ++j) {
        if (i != j) replicate_cov.at(i, j) *= 0.7;
      }
    }
  }
  stage.sim_outputs = std::move(sim_outputs);
  stage.replicate_cov = std::move(replicate_cov);
  return stage;
}

CalibrationCycleResult finish_calibration_cycle(
    const CalibrationCycleConfig& config, const CyclePriorStage& stage) {
  EPI_REQUIRE(stage.region != nullptr,
              "finish_calibration_cycle needs a populated prior stage");
  CalibrationCycleResult result;
  const FaultInjector injector(config.faults);
  ResilienceLedger ledger;
  ledger.merge(stage.ledger);  // the stage's retries come first, as the
                               // fused serial loop would record them
  const SyntheticRegion& region = *stage.region;
  result.prior_design = stage.prior_design;
  result.observed_cumulative = stage.observed_cumulative;
  result.truth_extension = stage.truth_extension;

  // --- Emulator-based Bayesian calibration ---------------------------------
  // The stage is shared read-only between concurrent tails, so the
  // calibrator gets copies of its matrices.
  const Vec observed_log = log_transform(result.observed_cumulative);
  AgentCalibrator calibrator(result.prior_design, Mat(stage.sim_outputs),
                             observed_log, config.seed,
                             Mat(stage.replicate_cov));
  result.calibration =
      calibrator.calibrate(config.posterior_configs, config.mcmc);
  result.posterior_configs = result.calibration.posterior_configs;

  // --- Prediction: simulate posterior configs over the full horizon --------
  const Tick total_days = config.calibration_days + config.horizon_days;
  std::vector<std::vector<double>> forecast_curves;
  const std::size_t runs =
      std::min(config.prediction_runs, result.posterior_configs.size());
  forecast_curves.reserve(runs);
  {
    auto ensemble = exec::parallel_index_map(
        runs,
        [&](std::size_t i) {
          const CellConfig cell = cell_from_calibration_point(
              config.region, static_cast<std::uint32_t>(1000 + i),
              result.posterior_configs[i], 1, total_days, config.seed);
          FarmRun run;
          run.series = with_sim_retries(
              injector, config.retry, 1000 + i, run.ledger,
              [&] { return simulate_config(region, cell, total_days, 0); });
          return run;
        },
        farm_config(config, "forecast"));
    for (std::size_t i = 0; i < ensemble.size(); ++i) {
      ledger.merge(ensemble[i].ledger);
      forecast_curves.push_back(std::move(ensemble[i].series));
    }
  }
  if (!forecast_curves.empty()) {
    result.forecast = ensemble_band(forecast_curves, 0.95);
    result.forecast_coverage =
        band_coverage(result.forecast, result.truth_extension);
    EPI_INFO("calibration cycle: forecast coverage "
             << result.forecast_coverage);
  }
  result.resilience = ledger.summary();
  return result;
}

CalibrationCycleResult run_calibration_cycle(
    const CalibrationCycleConfig& config) {
  return finish_calibration_cycle(config, run_cycle_prior_stage(config));
}

namespace {

using report_text::put;
using report_text::put_count;
using report_text::put_line;
using report_text::put_vec;

void put_points(std::string& out, const char* key,
                const std::vector<ParamPoint>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    out += key;
    out += '[';
    out += std::to_string(i);
    out += "]=";
    for (double v : points[i]) {
      put(out, v);
      out += ' ';
    }
    out += '\n';
  }
}

}  // namespace

std::string serialize(const CalibrationCycleResult& result) {
  std::string out;
  out.reserve(1 << 16);
  for (std::size_t d = 0; d < result.prior_design.ranges.size(); ++d) {
    const ParamRange& range = result.prior_design.ranges[d];
    out += "range[" + std::to_string(d) + "]=" + range.name + ' ';
    put(out, range.lo);
    out += ' ';
    put(out, range.hi);
    out += '\n';
  }
  put_points(out, "prior_point", result.prior_design.points);
  put_points(out, "posterior_config", result.posterior_configs);
  put_points(out, "chain_sample", result.calibration.chain.samples);
  put_line(out, "chain.acceptance_rate",
           result.calibration.chain.acceptance_rate);
  put_line(out, "chain.burn_in_acceptance_rate",
           result.calibration.chain.burn_in_acceptance_rate);
  put_vec(out, "chain.final_step", result.calibration.chain.final_step);
  put_line(out, "chain.best_log_density",
           result.calibration.chain.best_log_density);
  put_vec(out, "chain.best_point", result.calibration.chain.best_point);
  put_vec(out, "band_mean", result.calibration.band_mean);
  put_vec(out, "band_lo", result.calibration.band_lo);
  put_vec(out, "band_hi", result.calibration.band_hi);
  put_line(out, "coverage95", result.calibration.coverage95);
  put_line(out, "acceptance_rate", result.calibration.acceptance_rate);
  put_line(out, "emulator_variance_captured",
           result.calibration.emulator_variance_captured);
  put_vec(out, "observed_cumulative", result.observed_cumulative);
  put_vec(out, "truth_extension", result.truth_extension);
  put_vec(out, "forecast.median", result.forecast.median);
  put_vec(out, "forecast.lo", result.forecast.lo);
  put_vec(out, "forecast.hi", result.forecast.hi);
  put_vec(out, "forecast.mean", result.forecast.mean);
  put_line(out, "forecast_coverage", result.forecast_coverage);
  const ResilienceSummary& res = result.resilience;
  put_count(out, "resilience.node_crashes", res.node_crashes);
  put_count(out, "resilience.jobs_killed", res.jobs_killed);
  put_count(out, "resilience.jobs_requeued", res.jobs_requeued);
  put_count(out, "resilience.wan_failures", res.wan_failures);
  put_count(out, "resilience.wan_degraded", res.wan_degraded);
  put_count(out, "resilience.wan_retries", res.wan_retries);
  put_count(out, "resilience.db_drops", res.db_drops);
  put_count(out, "resilience.db_reconnects", res.db_reconnects);
  put_count(out, "resilience.sim_retries", res.sim_retries);
  put_line(out, "resilience.wasted_node_hours", res.wasted_node_hours);
  put_line(out, "resilience.checkpoint_overhead_node_hours",
           res.checkpoint_overhead_node_hours);
  put_line(out, "resilience.retry_wait_hours", res.retry_wait_hours);
  return out;
}

}  // namespace epi
