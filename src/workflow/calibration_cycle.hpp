// The calibration-prediction cycle (paper Figs 4-5, case study 3,
// Appendix F).
//
// End to end: generate the region, take the observed county-level
// confirmed-case series (synthetic surveillance), simulate a 100-point
// Latin-hypercube prior design over (TAU, SYMP, SH compliance, VHI
// compliance), fit the GPMSA emulator, run Bayesian calibration, resample
// 100 posterior configurations, simulate them forward, and produce the
// Fig 17 forecast band. Fig 15's prior/posterior scatter and Fig 16's
// emulator band come from the same result object.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analytics/ensemble.hpp"
#include "calibration/calibrate.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "resilience/retry_policy.hpp"
#include "surveillance/ground_truth.hpp"
#include "synthpop/generator.hpp"
#include "workflow/designs.hpp"

namespace epi::obs {
class Session;
}

namespace epi {

struct CalibrationCycleConfig {
  std::string region = "VA";
  double scale = 1.0 / 2000.0;
  std::uint64_t seed = 20200411;  // case study: data through April 11, 2020
  std::size_t prior_configs = 100;
  std::size_t posterior_configs = 100;
  /// Days of observed data used for calibration.
  Tick calibration_days = 80;
  /// Forecast horizon beyond the observed window (8 weeks in Fig 17).
  Tick horizon_days = 56;
  /// Posterior configurations actually simulated for the forecast band.
  std::size_t prediction_runs = 30;
  McmcConfig mcmc;

  /// Surveillance-truth epidemic intensity. At small population scales the
  /// observed counts must be large enough to be meaningful once scaled
  /// down, so the default truth is a hot wave (see calibration_cycle.cpp's
  /// takeoff alignment).
  double truth_beta = 0.42;
  double truth_distancing_effect = 0.52;
  /// The synthetic surveillance reports (nearly all) symptomatic cases so
  /// that observed counts and the simulator's symptomatic-entry counts
  /// share units; the center of the SYMP calibration range keeps the two
  /// consistent.
  double truth_reporting_rate = 0.575;
  /// Days of surveillance history searched for the takeoff point.
  int takeoff_search_days = 150;

  /// Injected fault environment for the home-cluster simulation farm
  /// (FaultSpec::sim_failure_prob: one prior/forecast run dying
  /// transiently and being re-run). Disabled by default; because a
  /// replicate is a pure function of its config, retries reproduce the
  /// exact same trajectory and only the resilience accounting changes.
  FaultSpec faults;
  RetryPolicy retry;

  /// Worker threads for the simulation farm (prior-design runs, the
  /// replicate-covariance runs feeding the emulator, and the forecast
  /// ensemble); 0 = the EPI_JOBS environment variable (default 1, the
  /// serial seed path). Every farm task is a pure function of its
  /// config/seed, so parallel output is byte-identical to serial — the
  /// per-task resilience ledgers are merged in task-index order.
  std::size_t jobs = 0;

  /// Optional observability session (non-owning; nullptr = disabled, the
  /// exact untraced path): farm task spans land on per-worker lanes of
  /// the "exec" trace process, plus exec.tasks/exec.steal counters and
  /// the exec.queue_depth gauge.
  obs::Session* trace = nullptr;

  /// Injectable region supplier (null = generate_region directly). The
  /// scenario service points this at its content-addressed artifact cache
  /// so concurrent cycles for one (region, scale, seed) share a single
  /// synthetic-population build; generate_region is pure, so the cycle
  /// result is byte-identical either way.
  RegionSource region_source;
};

/// Everything the cycle computes up through the prior-design simulations
/// and the replicate covariance — the expensive, reusable front half.
/// Requests that agree on the prior-stage knobs (region, scale, seed,
/// prior_configs, calibration_days, horizon_days, the truth parameters,
/// faults/retry) but differ in the tail (posterior_configs, MCMC settings,
/// prediction_runs) can share one stage artifact; the scenario service
/// caches it content-addressed.
struct CyclePriorStage {
  std::shared_ptr<const SyntheticRegion> region;
  std::vector<double> observed_cumulative;
  std::vector<double> truth_extension;
  CalibrationDesign prior_design;
  /// Log-transformed prior-design trajectories, one row per design point.
  Mat sim_outputs;
  Mat replicate_cov;
  /// Retry accounting for the stage's simulation farm; merged into the
  /// finishing ledger so a split cycle reports exactly what the fused one
  /// does.
  ResilienceLedger ledger;
};

/// Runs the front half of the cycle (region/truth/prior sims/replicate
/// covariance). Pure function of the prior-stage knobs in `config`.
CyclePriorStage run_cycle_prior_stage(const CalibrationCycleConfig& config);

struct CalibrationCycleResult {
  CalibrationDesign prior_design;
  AgentCalibrationResult calibration;
  /// Posterior configurations in original units (TAU, SYMP, SH, VHI).
  std::vector<ParamPoint> posterior_configs;

  /// Observed cumulative confirmed cases (scaled to the simulated
  /// population) for the calibration window.
  std::vector<double> observed_cumulative;
  /// Hidden-truth continuation over the forecast horizon (for scoring).
  std::vector<double> truth_extension;

  /// Fig 17: ensemble forecast of cumulative confirmed cases over
  /// calibration_days + horizon_days.
  EnsembleBand forecast;
  /// Fraction of truth-extension points inside the forecast band.
  double forecast_coverage = 0.0;

  /// Retry accounting for the simulation farm (all-zero when
  /// CalibrationCycleConfig::faults is disabled).
  ResilienceSummary resilience;
};

CalibrationCycleResult run_calibration_cycle(
    const CalibrationCycleConfig& config);

/// Finishes a cycle from a (possibly shared, possibly cached) prior
/// stage: emulator calibration, posterior resampling, the forecast
/// ensemble. `stage` is read-only so one stage artifact can serve many
/// concurrent tails. run_calibration_cycle(config) is byte-identical to
/// finish_calibration_cycle(config, run_cycle_prior_stage(config)).
CalibrationCycleResult finish_calibration_cycle(
    const CalibrationCycleConfig& config, const CyclePriorStage& stage);

/// Deterministic full-field dump of a cycle result (doubles rendered as
/// hexfloat, so distinct values never collide). Equal strings mean
/// byte-identical results — the oracle used by the parallel-vs-serial
/// tests, bench_farm_scaling, and the CI EPI_JOBS report diff.
std::string serialize(const CalibrationCycleResult& result);

}  // namespace epi
