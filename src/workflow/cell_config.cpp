#include "workflow/cell_config.hpp"

#include "util/error.hpp"

namespace epi {

Json CellConfig::to_json() const {
  JsonObject o;
  o["region"] = region;
  o["cell"] = static_cast<std::int64_t>(cell);
  o["replicates"] = static_cast<std::int64_t>(replicates);
  o["numDays"] = static_cast<std::int64_t>(num_days);
  o["seed"] = static_cast<std::int64_t>(seed);
  JsonObject disease_json;
  disease_json["transmissibility"] = disease.transmissibility;
  disease_json["symptomaticFraction"] = disease.symptomatic_fraction;
  o["disease"] = Json(std::move(disease_json));
  o["interventions"] = Json(JsonArray(interventions.begin(), interventions.end()));
  JsonArray seeds_json;
  for (const SeedSpec& s : seeds) {
    JsonObject seed_obj;
    seed_obj["county"] = static_cast<std::int64_t>(s.county);
    seed_obj["count"] = static_cast<std::int64_t>(s.count);
    seed_obj["tick"] = static_cast<std::int64_t>(s.tick);
    seeds_json.push_back(Json(std::move(seed_obj)));
  }
  o["seeds"] = Json(std::move(seeds_json));
  return Json(std::move(o));
}

CellConfig CellConfig::from_json(const Json& j) {
  CellConfig c;
  c.region = j.at("region").as_string();
  c.cell = static_cast<std::uint32_t>(j.at("cell").as_int());
  c.replicates = static_cast<std::uint32_t>(j.at("replicates").as_int());
  c.num_days = static_cast<Tick>(j.at("numDays").as_int());
  c.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  c.disease.transmissibility = j.at("disease").at("transmissibility").as_double();
  c.disease.symptomatic_fraction =
      j.at("disease").at("symptomaticFraction").as_double();
  c.interventions = j.at("interventions").as_array();
  for (const Json& s : j.at("seeds").as_array()) {
    SeedSpec spec;
    spec.county = static_cast<std::uint16_t>(s.at("county").as_int());
    spec.count = static_cast<std::uint32_t>(s.at("count").as_int());
    spec.tick = static_cast<Tick>(s.at("tick").as_int());
    c.seeds.push_back(spec);
  }
  return c;
}

std::uint64_t CellConfig::byte_size() const {
  // A shipped cell carries the cell document plus its fully materialized
  // disease-model JSON (every cell's transmissibility / symptomatic
  // fraction yields a distinct model file, as in production EpiHiper runs).
  return to_json().dump().size() +
         covid_model(disease).to_json().dump(2).size();
}

std::vector<std::shared_ptr<Intervention>> CellConfig::make_interventions()
    const {
  std::vector<std::shared_ptr<Intervention>> out;
  out.reserve(interventions.size());
  for (const Json& spec : interventions) {
    out.push_back(intervention_from_json(spec));
  }
  return out;
}

SimulationConfig CellConfig::make_sim_config(std::uint32_t replicate) const {
  EPI_REQUIRE(replicate < replicates,
              "replicate " << replicate << " out of range for cell " << cell);
  SimulationConfig config;
  config.num_ticks = num_days;
  config.seed = seed;
  config.replicate = replicate;
  config.seeds = seeds;
  return config;
}

}  // namespace epi
