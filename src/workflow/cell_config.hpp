// Simulation configurations — "cells" (paper §III: "both calibration and
// prediction workflows start by generating simulation configurations,
// also known as cells"). A cell binds a region, the disease-parameter
// overrides, the intervention set, seeding, replicate count and horizon.
// Cells are JSON documents, as all EpiHiper inputs are, and their
// serialized size feeds the Table II "daily simulation configurations"
// accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "epihiper/interventions.hpp"
#include "epihiper/simulation.hpp"
#include "util/json.hpp"

namespace epi {

struct CellConfig {
  std::string region = "VA";
  std::uint32_t cell = 0;
  std::uint32_t replicates = 1;
  Tick num_days = 365;
  std::uint64_t seed = 1;
  CovidParams disease;
  /// Intervention specs consumed by intervention_from_json.
  std::vector<Json> interventions;
  /// Seeding: per-county exposure counts at given ticks.
  std::vector<SeedSpec> seeds;

  Json to_json() const;
  static CellConfig from_json(const Json& j);

  /// Serialized size in bytes (config-transfer accounting).
  std::uint64_t byte_size() const;

  /// Materializes the interventions for one replicate run.
  std::vector<std::shared_ptr<Intervention>> make_interventions() const;

  /// Builds the per-replicate SimulationConfig.
  SimulationConfig make_sim_config(std::uint32_t replicate) const;
};

}  // namespace epi
