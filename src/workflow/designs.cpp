#include "workflow/designs.hpp"

#include "synthpop/us_states.hpp"
#include "util/error.hpp"

namespace epi {

std::vector<std::string> all_regions() {
  std::vector<std::string> regions;
  regions.reserve(us_state_count());
  for (const StateInfo& state : us_states()) regions.push_back(state.abbrev);
  return regions;
}

WorkflowDesign economic_design() {
  WorkflowDesign d;
  d.name = "economic";
  d.cells = 12;  // 2 VHI x 3 durations x 2 compliances
  d.replicates = 15;
  d.regions = all_regions();
  d.cost_factor = 1.1;  // NPI bookkeeping on top of the base stack
  d.num_days = 365;
  return d;
}

WorkflowDesign prediction_design() {
  WorkflowDesign d;
  d.name = "prediction";
  d.cells = 12;  // 3 reopening levels x 4 contact-tracing compliances
  d.replicates = 15;
  d.regions = all_regions();
  d.cost_factor = 1.6;  // contact tracing is the expensive intervention
  d.num_days = 365;
  return d;
}

WorkflowDesign calibration_design() {
  WorkflowDesign d;
  d.name = "calibration";
  d.cells = 300;
  d.replicates = 1;
  d.regions = all_regions();
  d.cost_factor = 1.0;
  d.num_days = 365;
  return d;
}

std::vector<ParamRange> calibration_parameter_ranges() {
  return {
      ParamRange{"TAU", 0.10, 0.30},             // transmissibility
      ParamRange{"SYMP", 0.35, 0.80},            // symptomatic fraction
      ParamRange{"SH_compliance", 0.20, 0.90},   // stay-at-home compliance
      ParamRange{"VHI_compliance", 0.30, 0.95},  // home-isolation compliance
  };
}

namespace {

// Seeding shared by all designs: expose persons in the three biggest
// counties at tick 0 (county indices 0-2 are the largest by construction
// of the Zipf layout).
std::vector<SeedSpec> default_seeds(const std::string& region) {
  const StateInfo& state = state_by_abbrev(region);
  std::vector<SeedSpec> seeds;
  const std::uint16_t counties =
      static_cast<std::uint16_t>(std::min<std::uint32_t>(3, state.counties));
  for (std::uint16_t c = 0; c < counties; ++c) {
    seeds.push_back(SeedSpec{c, 5, 0});
  }
  return seeds;
}

Json sc_spec() {
  JsonObject o;
  o["type"] = "SC";
  o["start"] = 10;
  return Json(std::move(o));
}

Json vhi_spec(double compliance) {
  JsonObject o;
  o["type"] = "VHI";
  o["compliance"] = compliance;
  return Json(std::move(o));
}

Json sh_spec(Tick start, Tick end, double compliance) {
  JsonObject o;
  o["type"] = "SH";
  o["start"] = static_cast<std::int64_t>(start);
  o["end"] = static_cast<std::int64_t>(end);
  o["compliance"] = compliance;
  return Json(std::move(o));
}

Json ro_spec(Tick reopen, double level) {
  JsonObject o;
  o["type"] = "RO";
  o["reopenTick"] = static_cast<std::int64_t>(reopen);
  o["level"] = level;
  return Json(std::move(o));
}

Json ct_spec(double trace_compliance) {
  JsonObject o;
  o["type"] = "D1CT";
  o["start"] = 15;
  o["indexCompliance"] = 0.5;
  o["traceCompliance"] = trace_compliance;
  return Json(std::move(o));
}

}  // namespace

CellConfig cell_from_calibration_point(const std::string& region,
                                       std::uint32_t cell_index,
                                       const ParamPoint& point,
                                       std::uint32_t replicates, Tick num_days,
                                       std::uint64_t seed) {
  EPI_REQUIRE(point.size() == 4,
              "calibration point must be (TAU, SYMP, SH, VHI)");
  CellConfig config;
  config.region = region;
  config.cell = cell_index;
  config.replicates = replicates;
  config.num_days = num_days;
  config.seed = mix_labels(seed, {0x43454cULL, cell_index});  // "CEL"
  config.disease.transmissibility = point[0];
  config.disease.symptomatic_fraction = point[1];
  config.interventions = {vhi_spec(point[3]), sc_spec(),
                          sh_spec(20, 81, point[2])};
  config.seeds = default_seeds(region);
  return config;
}

std::vector<CellConfig> make_cell_configs(const WorkflowDesign& design,
                                          const std::string& region,
                                          std::uint64_t seed) {
  std::vector<CellConfig> configs;
  configs.reserve(design.cells);
  if (design.name == "economic") {
    // Factorial: 2 VHI compliances x 3 lockdown durations x 2 compliances.
    const double vhi_levels[] = {0.5, 0.8};
    const Tick durations[] = {30, 60, 90};
    const double sh_levels[] = {0.5, 0.8};
    std::uint32_t cell = 0;
    for (double vhi : vhi_levels) {
      for (Tick duration : durations) {
        for (double sh : sh_levels) {
          CellConfig config;
          config.region = region;
          config.cell = cell;
          config.replicates = design.replicates;
          config.num_days = design.num_days;
          config.seed = mix_labels(seed, {0x45434fULL, cell});  // "ECO"
          config.disease = CovidParams{};  // calibrated toward R0 = 2.5
          config.interventions = {vhi_spec(vhi), sc_spec(),
                                  sh_spec(20, 20 + duration, sh)};
          config.seeds = default_seeds(region);
          configs.push_back(std::move(config));
          ++cell;
        }
      }
    }
  } else if (design.name == "prediction") {
    // Factorial: 3 partial-reopening levels x 4 tracing compliances.
    const double reopen_levels[] = {0.25, 0.5, 0.75};
    const double trace_levels[] = {0.2, 0.4, 0.6, 0.8};
    std::uint32_t cell = 0;
    for (double reopen : reopen_levels) {
      for (double trace : trace_levels) {
        CellConfig config;
        config.region = region;
        config.cell = cell;
        config.replicates = design.replicates;
        config.num_days = design.num_days;
        config.seed = mix_labels(seed, {0x505244ULL, cell});  // "PRD"
        config.disease = CovidParams{};
        config.interventions = {vhi_spec(0.75), sc_spec(),
                                sh_spec(20, 81, 0.6), ro_spec(81, reopen),
                                ct_spec(trace)};
        config.seeds = default_seeds(region);
        configs.push_back(std::move(config));
        ++cell;
      }
    }
  } else if (design.name == "calibration") {
    Rng rng = Rng(seed).derive({0x4c4853ULL, state_by_abbrev(region).fips});
    const auto points =
        latin_hypercube(design.cells, calibration_parameter_ranges(), rng);
    for (std::uint32_t cell = 0; cell < design.cells; ++cell) {
      configs.push_back(cell_from_calibration_point(
          region, cell, points[cell], design.replicates, design.num_days,
          seed));
    }
  } else {
    throw ConfigError("unknown workflow design: " + design.name);
  }
  EPI_ASSERT(configs.size() == design.cells,
             "design " << design.name << " produced " << configs.size()
                       << " cells, expected " << design.cells);
  return configs;
}

}  // namespace epi
