// The paper's workflow designs (Table I and Figs 3-5).
//
//   Economic    — factorial (2 VHI compliances x 3 lockdown durations x
//                 2 lockdown compliances) = 12 cells x 51 regions x 15
//                 replicates = 9180 simulations;
//   Prediction  — (3 partial-reopening levels x 4 contact-tracing
//                 compliances) = 12 cells x 51 x 15 = 9180;
//   Calibration — 300 LHS cells x 51 x 1 replicate = 15300, exploring
//                 (TAU, SYMP, SH compliance, VHI compliance), the Fig 15
//                 parameter set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/lhs.hpp"
#include "workflow/cell_config.hpp"

namespace epi {

struct WorkflowDesign {
  std::string name;
  std::uint32_t cells = 1;
  std::uint32_t replicates = 1;
  std::vector<std::string> regions;
  /// Intervention complexity multiplier for the task-time model.
  double cost_factor = 1.0;
  Tick num_days = 365;

  std::uint64_t simulations() const {
    return static_cast<std::uint64_t>(cells) * replicates * regions.size();
  }
};

/// All 51 region abbreviations.
std::vector<std::string> all_regions();

WorkflowDesign economic_design();
WorkflowDesign prediction_design();
WorkflowDesign calibration_design();

/// The calibration parameter space of case study 3 / Fig 15.
std::vector<ParamRange> calibration_parameter_ranges();

/// Generates the concrete cell configurations of a design for one region.
/// Factorial designs enumerate their factor grid; the calibration design
/// draws an LHS over calibration_parameter_ranges().
std::vector<CellConfig> make_cell_configs(const WorkflowDesign& design,
                                          const std::string& region,
                                          std::uint64_t seed);

/// Builds a CellConfig for one point of the calibration parameter space
/// (TAU, SYMP, SH compliance, VHI compliance), shared by the calibration
/// design and the posterior-resampling step of the prediction workflow.
CellConfig cell_from_calibration_point(const std::string& region,
                                       std::uint32_t cell_index,
                                       const ParamPoint& point,
                                       std::uint32_t replicates, Tick num_days,
                                       std::uint64_t seed);

}  // namespace epi
