#include "workflow/nightly.hpp"

#include <algorithm>

#include "analytics/aggregate.hpp"
#include "epihiper/parallel.hpp"
#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "workflow/report_text.hpp"

namespace epi {

NightlyWorkflow::NightlyWorkflow(NightlyConfig config)
    : config_(std::move(config)),
      remote_(bridges_cluster()),
      home_(rivanna_cluster()) {
  EPI_REQUIRE(config_.scale > 0.0 && config_.scale <= 1.0,
              "scale out of (0, 1]");
}

const SyntheticRegion& NightlyWorkflow::region(const std::string& abbrev) {
  auto it = regions_.find(abbrev);
  if (it == regions_.end()) {
    SynthPopConfig pop_config;
    pop_config.region = abbrev;
    pop_config.scale = config_.scale;
    pop_config.seed = config_.seed;
    it = regions_
             .emplace(abbrev, make_region(config_.region_source, pop_config))
             .first;
    // One person-database server per region (section V step 1); the
    // production bound of ~1000 connections applies.
    databases_.start(it->second->population, db_connection_bound());
  }
  return *it->second;
}

WorkflowReport NightlyWorkflow::run(const WorkflowDesign& design) {
  WorkflowReport report;
  report.name = design.name;
  report.planned_simulations = design.simulations();

  const FaultInjector injector(config_.faults);
  ResilienceLedger ledger;
  GlobusTransfer wan;
  if (injector.enabled()) {
    wan.enable_resilience(&injector, config_.retry, &ledger);
  }

  // Observability session (null = disabled, the exact untraced path).
  obs::TraceRecorder* const trace =
      config_.trace != nullptr ? &config_.trace->trace() : nullptr;
  obs::MetricsRegistry* const metrics =
      config_.trace != nullptr ? &config_.trace->metrics() : nullptr;
  std::uint32_t pid_home = 0, pid_remote = 0, pid_wan = 0;
  if (trace != nullptr) {
    pid_home = trace->process("home");
    pid_remote = trace->process("remote");
    pid_wan = trace->process("wan");
    trace->thread_name(pid_home, 0, "workflow");
    trace->thread_name(pid_remote, 0, "workflow");
    trace->thread_name(pid_wan, 0, "to remote");
    trace->thread_name(pid_wan, 1, "to home");
    ledger.set_trace(trace, pid_remote, 0);
    wan.enable_trace(trace, pid_wan, metrics);
  }
  databases_.set_metrics(metrics);
  auto site_pid = [&](const std::string& site) {
    return site == "home" ? pid_home : site == "remote" ? pid_remote : pid_wan;
  };

  double clock_hours = 0.0;
  auto phase = [&](const std::string& name, const std::string& site,
                   double duration_hours) {
    report.timeline.push_back(PhaseRecord{name, site, clock_hours,
                                          duration_hours});
    if (trace != nullptr) {
      // Phase-span tid 0 is each site's "workflow" lane; DES job spans
      // live on the per-node lanes above it.
      obs::TraceArgs args;
      args["site"] = site;
      trace->complete(site_pid(site), 0, name, "phase", clock_hours,
                      duration_hours, std::move(args));
      trace->set_sim_hours(clock_hours + duration_hours);
    }
    clock_hours += duration_hours;
  };
  // Wall-clock phase duration with a model floor; under deterministic
  // timing the floor is the duration.
  auto timed_hours = [&](double floor_hours, const Timer& timer) {
    if (config_.deterministic_timing) return floor_hours;
    return std::max(floor_hours, timer.elapsed_seconds() / 3600.0);
  };

  // ---- Phase 1 (home): generate cell configurations ----------------------
  Timer config_timer;
  std::map<std::string, std::vector<CellConfig>> configs_by_region;
  for (const std::string& abbrev : design.regions) {
    auto configs = make_cell_configs(design, abbrev, config_.seed);
    std::uint64_t region_bytes = 0;
    for (const CellConfig& config : configs) {
      region_bytes += config.byte_size();
    }
    report.config_bytes += region_bytes;
    if (trace != nullptr) {
      obs::TraceArgs args;
      args["bytes"] = region_bytes;
      args["cells"] = static_cast<std::uint64_t>(configs.size());
      trace->instant(pid_home, 0, "configs " + abbrev, "config-gen",
                     clock_hours, std::move(args));
    }
    configs_by_region.emplace(abbrev, std::move(configs));
  }
  phase("generate configurations", "home", timed_hours(0.25, config_timer));

  // ---- Phase 2 (WAN): configs to the remote site --------------------------
  wan.set_clock_hours(clock_hours);
  ledger.set_trace_base_hours(clock_hours);
  const double config_transfer_s =
      wan.transfer("cell configurations", report.config_bytes, true);
  phase("transfer configurations", "wan", config_transfer_s / 3600.0);

  // ---- Phase 3 (remote): instantiate population database snapshots -------
  // Snapshot instantiation is modeled: ~30 s fixed + 10 s per million
  // full-scale persons, all regions starting in parallel.
  double db_start_hours = 0.0;
  for (const std::string& abbrev : design.regions) {
    const StateInfo& state = state_by_abbrev(abbrev);
    const double seconds =
        30.0 + 10.0 * static_cast<double>(state.population) / 1e6;
    if (trace != nullptr) {
      obs::TraceArgs args;
      args["seconds"] = seconds;
      trace->instant(pid_remote, 0, "snapshot " + abbrev, "db-snapshot",
                     clock_hours, std::move(args));
    }
    db_start_hours = std::max(db_start_hours, seconds / 3600.0);
  }
  phase("start population databases", "remote", db_start_hours);

  // ---- Phase 4 (remote): map and execute the job array -------------------
  const std::vector<SimTask> tasks = make_workflow_tasks(
      design.regions, design.cells, design.replicates, design.cost_factor);
  const PackingPlan plan =
      pack_tasks(tasks, remote_.nodes, config_.policy);
  // Replay the packed order through the Slurm DES.
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const SimTask& task : tasks) by_id.emplace(task.id, &task);
  std::vector<SimTask> ordered;
  ordered.reserve(tasks.size());
  for (const PackingLevel& level : plan.levels) {
    for (std::uint64_t id : level.task_ids) ordered.push_back(*by_id.at(id));
  }
  DesConfig des_config;
  des_config.window_hours = remote_.window_hours;
  des_config.backfill = config_.policy != PackingPolicy::kNextFitArrival;
  if (injector.enabled()) {
    des_config.faults = &injector;
    des_config.checkpoint = config_.checkpoint;
    des_config.checkpoint.job_ticks = design.num_days;
    des_config.ledger = &ledger;
  }
  des_config.trace = trace;
  des_config.trace_pid = pid_remote;
  des_config.trace_base_hours = clock_hours;
  des_config.metrics = metrics;
  ledger.set_trace_base_hours(clock_hours);
  Rng des_rng = Rng(config_.seed).derive({0x444553ULL});  // "DES"
  const DesResult des = simulate_cluster(remote_, ordered, des_config, des_rng);
  report.schedule_makespan_hours = des.makespan_hours;
  report.utilization = des.utilization;
  report.unfinished_jobs = des.unfinished;
  phase("simulate (job array)", "remote", des.makespan_hours);

  // ---- Phase 4b: really execute a sample of the jobs ----------------------
  const std::vector<std::string>& sample_pool =
      config_.sample_regions.empty() ? design.regions : config_.sample_regions;
  EPI_REQUIRE(config_.sample_executions == 0 || !sample_pool.empty(),
              "sample executions requested ("
                  << config_.sample_executions
                  << ") but the sample pool is empty: the design has no "
                     "regions and NightlyConfig::sample_regions is empty");
  exec::ExecConfig farm;
  farm.jobs = config_.jobs;
  farm.label = "sample";
  farm.obs.trace = trace;
  farm.obs.metrics = metrics;
  farm.obs.deterministic_timing = config_.deterministic_timing;
  farm.obs.flow = config_.trace != nullptr && config_.trace->flow();
  double raw_bytes_per_person = 0.0;
  std::uint64_t sampled_persons = 0;
  double db_retry_wait_s = 0.0;
  Timer execute_timer;
  ledger.set_trace_base_hours(clock_hours);

  // Lazy region synthesis, farmed out: collect the regions the sample
  // will touch, generate the missing ones concurrently (generate_region
  // is a pure function of its config), then commit them to the cache —
  // and start their database servers — in first-use order, so the
  // registry ends up exactly as the serial engine leaves it.
  if (config_.sample_executions > 0) {
    std::vector<std::string> missing;
    for (std::size_t i = 0; i < config_.sample_executions; ++i) {
      const std::string& abbrev = sample_pool[i % sample_pool.size()];
      if (regions_.find(abbrev) == regions_.end() &&
          std::find(missing.begin(), missing.end(), abbrev) ==
              missing.end()) {
        missing.push_back(abbrev);
      }
    }
    exec::ExecConfig synth = farm;
    synth.label = "synth-region";
    auto generated = exec::parallel_map(
        missing,
        [&](const std::string& abbrev) {
          SynthPopConfig pop_config;
          pop_config.region = abbrev;
          pop_config.scale = config_.scale;
          pop_config.seed = config_.seed;
          return make_region(config_.region_source, pop_config);
        },
        synth);
    for (std::size_t r = 0; r < missing.size(); ++r) {
      auto it = regions_.emplace(missing[r], std::move(generated[r])).first;
      databases_.start(it->second->population, db_connection_bound());
    }
  }

  // Orchestration pass, in sample order: trace milestones and the
  // per-job database sessions (the DB-WMP constraint made concrete) are
  // engine state, so they stay serial regardless of the worker count —
  // which keeps the report and trace byte-identical to the serial path.
  for (std::size_t i = 0; i < config_.sample_executions; ++i) {
    const std::string& abbrev = sample_pool[i % sample_pool.size()];
    region(abbrev);  // cache hit after the prefetch above
    if (trace != nullptr) {
      obs::TraceArgs args;
      args["index"] = static_cast<std::uint64_t>(i);
      args["region"] = abbrev;
      trace->instant(pid_remote, 0, "sample " + abbrev, "execute",
                     clock_hours, std::move(args));
    }
    // Each running job holds connections against the region's database.
    // Under fault injection the session may drop and reconnect with
    // backoff.
    std::optional<DbConnection> connection = [&]() -> std::optional<DbConnection> {
      if (!injector.enabled()) return databases_.get(abbrev).connect();
      ResilientConnectResult attempt = databases_.get(abbrev).connect_resilient(
          injector, config_.retry, &ledger);
      db_retry_wait_s += attempt.wait_s;
      return std::move(attempt.connection);
    }();
    EPI_REQUIRE(connection.has_value(),
                "database connection pool exhausted for " << abbrev);
    // Touch the traits through the server as the simulator does at start.
    connection->persons_in_county(0);
    report.db_queries_served += connection->queries_served();
  }

  // Execution pass: the sampled simulations themselves — each a pure
  // function of its (cell, replicate) — run on the farm; their stats are
  // accumulated in sample-index order below.
  struct SampleStats {
    std::uint64_t raw_bytes = 0;
    std::uint64_t cube_bytes = 0;
    std::uint64_t persons = 0;
  };
  const auto sample_stats = exec::parallel_index_map(
      config_.sample_executions,
      [&](std::size_t i) {
        const std::string& abbrev = sample_pool[i % sample_pool.size()];
        const SyntheticRegion& reg = *regions_.at(abbrev);
        const auto& configs = configs_by_region.at(abbrev);
        const CellConfig& cell = configs[i % configs.size()];
        SimulationConfig sim_config = cell.make_sim_config(
            static_cast<std::uint32_t>(i) % cell.replicates);
        sim_config.num_ticks = std::min(config_.executed_days, cell.num_days);
        const DiseaseModel model = covid_model(cell.disease);
        const SimOutput output =
            run_simulation(reg.network, reg.population, model, sim_config,
                           [&] { return cell.make_interventions(); });
        const SummaryCube cube = build_summary_cube(
            output, reg.population, model, sim_config.num_ticks);
        SampleStats stats;
        stats.raw_bytes = raw_output_bytes(output);
        stats.cube_bytes = cube.byte_size();
        stats.persons = reg.population.person_count();
        return stats;
      },
      farm);
  for (const SampleStats& stats : sample_stats) {
    report.raw_bytes_measured += stats.raw_bytes;
    report.summary_bytes_measured += stats.cube_bytes;
    sampled_persons += stats.persons;
    ++report.executed_simulations;
  }
  if (sampled_persons > 0) {
    raw_bytes_per_person = static_cast<double>(report.raw_bytes_measured) /
                           static_cast<double>(sampled_persons);
  }
  // Extrapolate: raw output scales with persons simulated; it does NOT
  // scale with the remaining horizon, because transitions concentrate in
  // the epidemic wave, which the executed window covers. Summaries are
  // population-independent per simulation but grow with the horizon.
  std::uint64_t design_population = 0;
  for (const std::string& abbrev : design.regions) {
    design_population += state_by_abbrev(abbrev).population;
  }
  const double horizon_factor =
      static_cast<double>(design.num_days) /
      static_cast<double>(std::max<Tick>(1, std::min(config_.executed_days,
                                                     design.num_days)));
  report.raw_bytes_full_scale =
      raw_bytes_per_person * static_cast<double>(design_population) *
      design.cells * design.replicates;
  // Mean sampled cube size: sampled cells can differ in horizon/shape, so
  // extrapolating from the last sampled cube alone would skew the
  // full-scale summary estimate toward whatever cell happened to run
  // last.
  const double mean_cube_bytes =
      report.executed_simulations > 0
          ? static_cast<double>(report.summary_bytes_measured) /
                static_cast<double>(report.executed_simulations)
          : 0.0;
  const double full_cube_bytes = mean_cube_bytes * horizon_factor;
  report.summary_bytes_full_scale =
      full_cube_bytes * static_cast<double>(report.planned_simulations);
  phase("aggregate outputs", "remote",
        timed_hours(0.3, execute_timer) + db_retry_wait_s / 3600.0);

  // ---- Phase 5 (WAN): summaries home --------------------------------------
  wan.set_clock_hours(clock_hours);
  ledger.set_trace_base_hours(clock_hours);
  const double summary_transfer_s = wan.transfer(
      "summary outputs",
      static_cast<std::uint64_t>(report.summary_bytes_full_scale), false);
  phase("transfer summaries", "wan", summary_transfer_s / 3600.0);

  // ---- Phase 6 (home): analysis -------------------------------------------
  phase("analyze / brief stakeholders", "home", 2.0);

  report.db_servers_started = databases_.running_count();
  for (const std::string& abbrev : design.regions) {
    if (databases_.is_running(abbrev)) {
      report.db_peak_connections = std::max(
          report.db_peak_connections,
          databases_.get(abbrev).peak_connections());
    }
  }
  report.bytes_to_remote = wan.total_bytes_to_remote();
  report.bytes_to_home = wan.total_bytes_to_home();
  report.wan_seconds_to_remote = wan.total_seconds_to_remote();
  report.wan_seconds_to_home = wan.total_seconds_to_home();
  report.total_elapsed_hours = clock_hours;

  report.resilience = ledger.summary();
  report.deadline_slack_hours =
      remote_.window_hours - report.schedule_makespan_hours;
  report.deadline_met =
      report.unfinished_jobs == 0 &&
      (remote_.window_hours <= 0.0 ||
       report.schedule_makespan_hours <= remote_.window_hours);
  if (metrics != nullptr) {
    metrics->add("nightly.runs");
    metrics->add("nightly.planned_simulations", report.planned_simulations);
    metrics->add("nightly.executed_simulations", report.executed_simulations);
    metrics->add("nightly.config_bytes", report.config_bytes);
    metrics->add("nightly.raw_bytes_measured", report.raw_bytes_measured);
    metrics->add("nightly.summary_bytes_measured",
                 report.summary_bytes_measured);
    metrics->add("nightly.db_queries_served", report.db_queries_served);
    metrics->set("nightly.utilization", report.utilization);
    metrics->set("nightly.makespan_hours", report.schedule_makespan_hours);
    metrics->set("nightly.total_elapsed_hours", report.total_elapsed_hours);
    metrics->set("nightly.deadline_slack_hours", report.deadline_slack_hours);
    metrics->set("nightly.deadline_met", report.deadline_met ? 1.0 : 0.0);
  }
  EPI_INFO("workflow " << design.name << ": " << report.planned_simulations
                       << " sims planned, utilization " << report.utilization
                       << ", makespan " << report.schedule_makespan_hours
                       << "h");
  return report;
}

std::string serialize(const WorkflowReport& report) {
  using report_text::put;
  using report_text::put_count;
  using report_text::put_line;
  using report_text::put_text;
  std::string out;
  out.reserve(1 << 12);
  put_text(out, "name", report.name);
  put_count(out, "planned_simulations", report.planned_simulations);
  put_count(out, "executed_simulations", report.executed_simulations);
  put_count(out, "config_bytes", report.config_bytes);
  put_count(out, "raw_bytes_measured", report.raw_bytes_measured);
  put_count(out, "summary_bytes_measured", report.summary_bytes_measured);
  put_line(out, "raw_bytes_full_scale", report.raw_bytes_full_scale);
  put_line(out, "summary_bytes_full_scale", report.summary_bytes_full_scale);
  put_line(out, "schedule_makespan_hours", report.schedule_makespan_hours);
  put_line(out, "utilization", report.utilization);
  put_count(out, "unfinished_jobs", report.unfinished_jobs);
  put_count(out, "bytes_to_remote", report.bytes_to_remote);
  put_count(out, "bytes_to_home", report.bytes_to_home);
  put_line(out, "wan_seconds_to_remote", report.wan_seconds_to_remote);
  put_line(out, "wan_seconds_to_home", report.wan_seconds_to_home);
  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    const PhaseRecord& phase = report.timeline[i];
    out += "timeline[" + std::to_string(i) + "]=" + phase.phase + '|' +
           phase.site + '|';
    put(out, phase.start_hours);
    out += '|';
    put(out, phase.duration_hours);
    out += '\n';
  }
  put_line(out, "total_elapsed_hours", report.total_elapsed_hours);
  put_count(out, "db_servers_started", report.db_servers_started);
  put_count(out, "db_peak_connections", report.db_peak_connections);
  put_count(out, "db_queries_served", report.db_queries_served);
  const ResilienceSummary& res = report.resilience;
  put_count(out, "resilience.node_crashes", res.node_crashes);
  put_count(out, "resilience.jobs_killed", res.jobs_killed);
  put_count(out, "resilience.jobs_requeued", res.jobs_requeued);
  put_count(out, "resilience.wan_failures", res.wan_failures);
  put_count(out, "resilience.wan_degraded", res.wan_degraded);
  put_count(out, "resilience.wan_retries", res.wan_retries);
  put_count(out, "resilience.db_drops", res.db_drops);
  put_count(out, "resilience.db_reconnects", res.db_reconnects);
  put_count(out, "resilience.sim_retries", res.sim_retries);
  put_line(out, "resilience.wasted_node_hours", res.wasted_node_hours);
  put_line(out, "resilience.checkpoint_overhead_node_hours",
           res.checkpoint_overhead_node_hours);
  put_line(out, "resilience.retry_wait_hours", res.retry_wait_hours);
  put_line(out, "deadline_slack_hours", report.deadline_slack_hours);
  put_count(out, "deadline_met", report.deadline_met ? 1 : 0);
  return out;
}

}  // namespace epi
