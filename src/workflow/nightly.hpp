// The nightly combined workflow engine (paper Figs 1-2, §IV).
//
// Orchestrates one workflow across the two-cluster infrastructure model:
//   home:   generate cell configurations            (day)
//   WAN:    ship configurations to the remote site  (Globus model)
//   remote: instantiate population DB snapshots, map the <cell, region>
//           job set with FFDT-DC, execute the job array in the 10pm-8am
//           window (Slurm DES), aggregate outputs
//   WAN:    ship summaries home
//   home:   post-analysis
//
// Simulation physics run for real: a configurable sample of <cell, region>
// jobs is executed with the actual EpiHiper engine at the configured
// population scale; measured per-person output volumes extrapolate to the
// full design at scale 1 (who-runs-what and the schedule itself are exact,
// only the volume figures are extrapolated — see DESIGN.md).
//
// Resilience: NightlyConfig carries a FaultSpec; when enabled, node
// crashes hit the Slurm DES (killed jobs requeue from their last
// checkpoint), WAN transfers fail/degrade and retry with backoff, and
// person-DB sessions drop and reconnect. Every fault and recovery lands
// in WorkflowReport::resilience; with the spec disabled (default) the
// engine is byte-identical to the fault-free build.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "persondb/person_db.hpp"
#include "cluster/packing.hpp"
#include "cluster/slurm_sim.hpp"
#include "cluster/transfer.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "resilience/retry_policy.hpp"
#include "synthpop/generator.hpp"
#include "workflow/designs.hpp"

namespace epi::obs {
class Session;
}

namespace epi {

struct NightlyConfig {
  double scale = 1.0 / 8000.0;  // synthetic-population scale for real sims
  std::uint64_t seed = 20200325;
  /// How many <cell, region> jobs to execute with the real engine; the
  /// rest are covered by the schedule simulation + extrapolation.
  std::size_t sample_executions = 12;
  /// Regions eligible for real execution (empty = all; pick small states
  /// to keep bench runtime bounded).
  std::vector<std::string> sample_regions = {"WY", "VT", "DC", "AK"};
  /// Ticks actually executed in sampled runs (the full design's 365-day
  /// horizon is extrapolated linearly from this).
  Tick executed_days = 120;
  PackingPolicy policy = PackingPolicy::kFirstFitDecreasing;

  /// Worker threads for the real work of Phase 4b — the sampled
  /// simulations and the lazy region synthesis behind them; 0 = the
  /// EPI_JOBS environment variable (default 1, the serial seed path).
  /// Each sampled job is a pure function of its config/seed and the
  /// orchestration state (trace milestones, DB sessions, accounting) is
  /// committed in sample-index order, so the parallel WorkflowReport is
  /// byte-identical to the serial one.
  std::size_t jobs = 0;

  /// Injected fault environment (disabled by default: perfect hardware,
  /// byte-identical to the seed engine).
  FaultSpec faults;
  /// Backoff for WAN transfers and person-DB sessions under faults.
  RetryPolicy retry;
  /// Checkpoint/requeue model for remote jobs under faults
  /// (interval_ticks == 0: killed jobs restart from scratch). job_ticks
  /// is overwritten with the design's horizon at run time.
  CheckpointSpec checkpoint;
  /// Replace wall-clock phase timings (config generation, sample
  /// execution) with their deterministic model floors, making the whole
  /// WorkflowReport — timeline included — reproducible bit for bit.
  /// Off by default: the seed behaviour reports measured wall time.
  bool deterministic_timing = false;

  /// Optional observability session (non-owning; nullptr = disabled, the
  /// exact untraced code path). When set, every phase becomes a span,
  /// per-region milestones become instants, the Slurm DES / WAN / person
  /// DBs / resilience ledger all report into the session, and the caller
  /// writes trace.json + metrics.json via obs::Session::write(). Pair
  /// with deterministic_timing for byte-reproducible files.
  obs::Session* trace = nullptr;

  /// Injectable region supplier (null = generate_region directly). The
  /// scenario service points this at its content-addressed artifact cache
  /// so overlapping nightly requests share synthetic-population builds;
  /// generate_region is pure, so the WorkflowReport is byte-identical
  /// either way.
  RegionSource region_source;
};

struct PhaseRecord {
  std::string phase;
  std::string site;  // "home", "remote", "wan"
  double start_hours = 0.0;
  double duration_hours = 0.0;

  bool operator==(const PhaseRecord&) const = default;
};

struct WorkflowReport {
  std::string name;
  std::uint64_t planned_simulations = 0;
  std::uint64_t executed_simulations = 0;

  // Data accounting.
  std::uint64_t config_bytes = 0;
  std::uint64_t raw_bytes_measured = 0;      // at NightlyConfig::scale
  std::uint64_t summary_bytes_measured = 0;
  double raw_bytes_full_scale = 0.0;         // extrapolated to scale 1
  double summary_bytes_full_scale = 0.0;

  // Remote schedule.
  double schedule_makespan_hours = 0.0;
  double utilization = 0.0;
  std::size_t unfinished_jobs = 0;

  // Transfers.
  std::uint64_t bytes_to_remote = 0;
  std::uint64_t bytes_to_home = 0;
  double wan_seconds_to_remote = 0.0;
  double wan_seconds_to_home = 0.0;

  std::vector<PhaseRecord> timeline;
  double total_elapsed_hours = 0.0;

  // Person-database accounting (the per-region servers the simulations
  // query at run time).
  std::size_t db_servers_started = 0;
  std::size_t db_peak_connections = 0;
  std::uint64_t db_queries_served = 0;

  // Resilience accounting (all-zero when the injector is disabled).
  ResilienceSummary resilience;
  /// Slack against the 8am deadline: window length minus the remote
  /// schedule makespan (negative = the schedule blew the window).
  double deadline_slack_hours = 0.0;
  /// The night made its deadline: every job finished inside the window.
  bool deadline_met = true;

  bool operator==(const WorkflowReport&) const = default;
};

class NightlyWorkflow {
 public:
  explicit NightlyWorkflow(NightlyConfig config);

  /// Runs one workflow end to end and reports.
  WorkflowReport run(const WorkflowDesign& design);

  /// Region cache (also used by benches that want the same populations).
  const SyntheticRegion& region(const std::string& abbrev);

  /// The per-region person-database registry ("one database per region",
  /// paper section V step 1); servers start lazily with their regions.
  PersonDbRegistry& databases() { return databases_; }

  const NightlyConfig& config() const { return config_; }

 private:
  NightlyConfig config_;
  ClusterSpec remote_;
  ClusterSpec home_;
  // Shared-const so an injected region_source can hand the same build to
  // several engines at once.
  std::map<std::string, std::shared_ptr<const SyntheticRegion>> regions_;
  PersonDbRegistry databases_;
};

/// Deterministic full-field dump of a workflow report (doubles rendered as
/// hexfloat, so distinct values never collide). Equal strings mean
/// byte-identical reports — the oracle for the re-invocation regression
/// tests and the scenario service's response bytes.
std::string serialize(const WorkflowReport& report);

}  // namespace epi
