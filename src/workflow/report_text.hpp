// Internal helpers for the deterministic report dumps.
//
// Doubles render as hexfloat ("%a"): exact, so distinct values never
// print alike and string equality of two dumps is byte-identity of the
// underlying results. Shared by serialize(CalibrationCycleResult) and
// serialize(WorkflowReport) — and therefore by every byte-identity
// oracle in the tests, the CI report diffs, and the scenario service's
// response bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace epi::report_text {

inline void put(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  out += buf;
}

inline void put_line(std::string& out, const char* key, double value) {
  out += key;
  out += '=';
  put(out, value);
  out += '\n';
}

inline void put_vec(std::string& out, const char* key,
                    const std::vector<double>& values) {
  out += key;
  out += '=';
  for (double v : values) {
    put(out, v);
    out += ' ';
  }
  out += '\n';
}

inline void put_count(std::string& out, const char* key, std::uint64_t value) {
  out += key;
  out += '=';
  out += std::to_string(value);
  out += '\n';
}

inline void put_text(std::string& out, const char* key,
                     const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

}  // namespace epi::report_text
