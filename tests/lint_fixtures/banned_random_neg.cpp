// Negative fixture: things that merely look like libc randomness.
// (Fixtures are analyzer inputs, not compiled — Rng needs no definition.)
double seeded_value(Rng& rng, Rng* other) {
  rng.srand(7);              // method on a seeded type, not libc srand
  double a = rng.rand();     // method call via '.'
  double b = other->rand();  // method call via '->'
  int rand_count = 3;        // identifier containing 'rand', no call
  (void)rand_count;
  return a + b;
}
