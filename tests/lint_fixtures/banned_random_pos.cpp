// Positive fixture: unseeded libc randomness.
#include <cstdlib>

int noisy_value() {
  std::srand(42);          // line 5: banned-random (srand)
  return std::rand() % 7;  // line 6: banned-random (rand)
}
