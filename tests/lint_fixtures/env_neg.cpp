// Negative fixture: registered names through the sanctioned accessor,
// and strings the env-registry rule must not mistake for EPI_* names.
const char* read_knob() {
  const char* a = env_raw("EPI_FIXTURE_KNOB");    // registered
  const char* b = env_raw("EPI_FIXTURE_OTHER");   // registered
  const char* c = "EPIC_STORY";                   // no EPI_ prefix
  const char* d = "EPI_lowercase_not_a_name";     // not name-shaped
  const char* e = "SOME_OTHER_TOOLS_VAR";         // different namespace
  (void)b; (void)c; (void)d; (void)e;
  return a;
}
