// Positive fixture: raw getenv, and an EPI_* name missing from the
// registry (fixture_env.hpp registers only EPI_FIXTURE_KNOB/_OTHER).
#include <cstdlib>

const char* read_knob() {
  return std::getenv("EPI_UNREGISTERED_KNOB");  // line 6: env-getenv
}                                               // AND env-registry
