// Miniature env registry for the epilint fixture tests: the env-registry
// rule checks EPI_* string literals against this table.
#pragma once

struct EnvVarInfo {
  const char* name;
  const char* summary;
};

inline constexpr EnvVarInfo kEnvRegistry[] = {
    {"EPI_FIXTURE_KNOB", "registered knob used by the negative fixtures"},
    {"EPI_FIXTURE_OTHER", "second registered knob"},
};
