// Negative fixture: hexfloat in a report path, and decimal formatting in
// a function that is NOT on any output path.
#include <cstdio>
#include <iomanip>
#include <sstream>

void dump_table(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%a\n", v);  // hexfloat: exact
  os << std::hexfloat << v;
}

double scale_progress(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d%%", static_cast<int>(v));  // no float
  (void)buf;
  return v;
}
