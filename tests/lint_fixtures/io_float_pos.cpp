// Positive fixture: decimal float formatting in a report path (the
// function name makes it an output seed). Distinct doubles can print
// identically under %f / setprecision, breaking byte-identity replay.
#include <cstdio>
#include <iomanip>
#include <sstream>

void dump_table(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%f\n", v);  // line 10: io-nonhex-float
  os << std::setprecision(17) << v;            // line 11: io-nonhex-float
  os << std::fixed << v;                       // line 12: io-nonhex-float
}
