// Negative fixture: leveled logging and file-directed output are fine.
#include <cstdio>
#include <fstream>

void narrate(double x, std::FILE* trace) {
  EPI_WARN("bad x: " << x);          // the sanctioned logger macro
  std::ofstream out("table.txt");
  out << "x " << x << "\n";          // named file stream, not a console
  std::fprintf(trace, "x %d\n", 1);  // FILE* argument, not stderr/stdout
}
