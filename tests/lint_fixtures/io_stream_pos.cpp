// Positive fixture: raw stderr/stdout writes outside the logger.
#include <cstdio>
#include <iostream>

void complain(double x) {
  std::cerr << "bad x: " << x << "\n";      // line 6: io-raw-stream
  std::printf("progress %d\n", 1);          // line 7: io-raw-stream
  std::fprintf(stderr, "worse: %d\n", 2);   // line 8: io-raw-stream
}
