// Negative fixture: collectives every rank reaches, and rank-gated code
// that performs no collective.
void all_ranks(Comm& comm) {
  if (comm.rank() == 0) {
    log_line("rank 0 reporting");  // gated, but not a collective
  }
  comm.barrier();  // outside the branch: every rank calls it
}

void range_gated(Comm& comm, int rank, int size) {
  if (rank < size / 2) {  // no ==/!= comparison: pairwise stage, not a
    comm.send<int>(rank + size / 2, 1, 0);  // divergent collective
  }
}
