// Positive fixture: collectives under rank-divergent branches. Only some
// ranks reach the call, so the program deadlocks (or worse, mismatches).
void rank_gated(Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // line 5: mpilite-divergent-collective
  }
}

void rank_gated_else(Comm& comm, int my_rank) {
  if (my_rank != 0) {
    log_line("worker");
  } else {
    comm.allreduce(1);  // line 13: mpilite-divergent-collective
  }
}
