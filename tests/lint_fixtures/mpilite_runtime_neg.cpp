// Negative fixture: the two sanctioned Runtime entry points, plus type
// declarations that mention Runtime without using it.
class Runtime;

void spmd_main(int ranks) {
  Runtime::run(ranks, [](Comm& comm) { comm.barrier(); });
  Runtime::run_checked(ranks, [](Comm& comm) { comm.barrier(); });
}
