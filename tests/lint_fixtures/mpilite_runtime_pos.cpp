// Positive fixture: touching mpilite::Runtime other than through its two
// sanctioned entry points.
void spin_world() {
  Runtime rt(4);        // line 4: mpilite-runtime-entry (instance)
  Runtime::launch(4);   // line 5: mpilite-runtime-entry (member)
}
