// Negative fixture: paired send/recv sharing a tag, plus one-sided
// functions (only sends, or only receives) that cannot be judged.
void exchange_ok(Comm& comm, int peer) {
  comm.send<int>(peer, 7, 42);
  int got = comm.recv<int>(peer, 7);  // same tag: fine
  (void)got;
}

void push_only(Comm& comm, int peer) { comm.send<int>(peer, 3, 1); }

int pull_only(Comm& comm, int peer) { return comm.recv<int>(peer, 5); }
