// Positive fixture: a function whose sends and receives use disjoint tag
// sets — these messages can never pair up.
void exchange_broken(Comm& comm, int peer) {
  comm.send<int>(peer, 7, 42);
  int got = comm.recv<int>(peer, 9);  // line 5: mpilite-tag-mismatch
  (void)got;
}
