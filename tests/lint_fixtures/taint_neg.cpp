// Negative fixture: the same call shape as taint_pos, but every helper
// on the path from the output seed is deterministic.
#include <map>

namespace {

int accumulate_counts() {
  std::map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) {  // ordered: not a sink
    total += kv.second;
  }
  return total;
}

int gather() { return accumulate_counts(); }

}  // namespace

int write_summary() { return gather(); }
