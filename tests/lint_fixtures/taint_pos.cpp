// Positive fixture: determinism taint. write_summary is an output seed
// (name contains "write"); it reaches an unordered-container iteration
// two calls away, so the taint pass must report the seed -> sink path.
#include <unordered_map>

namespace {

int accumulate_counts() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) {  // line 12: unordered-iter AND the
    total += kv.second;            // determinism-taint sink
  }
  return total;
}

int gather() { return accumulate_counts(); }

}  // namespace

int write_summary() { return gather(); }
