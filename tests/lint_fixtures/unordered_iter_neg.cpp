// Negative fixture: ordered iteration and non-iterating unordered use.
#include <map>
#include <unordered_map>

int lookup_only(int key) {
  std::map<int, int> ordered;
  for (const auto& kv : ordered) {  // std::map: deterministic order
    (void)kv;
  }
  std::unordered_map<int, int> index;
  index[key] = 1;                  // subscript, not iteration
  auto hit = index.find(key);      // point lookup, not iteration
  return hit == index.end() ? 0 : hit->second;
}
