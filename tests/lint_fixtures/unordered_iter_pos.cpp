// Positive fixture: iteration over unordered containers — a range-for
// over a member declared in the paired header, a .begin() walk, and a
// local declared through an alias.
#include "unordered_iter_pos.hpp"

void Tally::tick() {
  for (const auto& kv : counts_) {  // line 7: unordered-iter (counts_)
    (void)kv;
  }
  auto it = edges_.begin();  // line 10: unordered-iter (edges_)
  (void)it;
  EdgeSet scratch;
  for (long e : scratch) {  // line 13: unordered-iter (scratch)
    (void)e;
  }
}
