// Header half of the unordered-iter positive fixture: the member and the
// alias are declared here and iterated in the paired .cpp, exercising the
// cross-file declaration harvest of the lite translation unit.
#pragma once
#include <unordered_map>
#include <unordered_set>

using EdgeSet = std::unordered_set<long>;

class Tally {
 public:
  void tick();

 private:
  std::unordered_map<int, int> counts_;
  EdgeSet edges_;
};
