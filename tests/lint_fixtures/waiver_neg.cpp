// Negative fixture: correctly spelled waivers suppress their findings —
// same-line, line-above, and multi-line-comment-above forms.
#include <cstdlib>
#include <unordered_map>

int sanctioned() {
  int a = std::rand();  // epilint: allow(banned-random) — fixture: same line
  // epilint: allow(banned-random) — fixture: line above
  int b = std::rand();
  // epilint: allow(banned-random, unordered-iter) — fixture: a multi-line
  // justification, checking that the waiver still reaches the first code
  // line below the comment block.
  int c = std::rand();
  return a + b + c;
}
