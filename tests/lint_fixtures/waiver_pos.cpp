// Positive fixture: waivers naming unknown rules are themselves findings
// (a typo'd waiver must not silently suppress nothing).
#include <cstdlib>

int misdirected() {
  // epilint: allow(no-such-rule) — typo'd rule name, line 6: bad-waiver
  return std::rand();  // line 7: banned-random (waiver names wrong rule)
}
