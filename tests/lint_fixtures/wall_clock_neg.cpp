// Negative fixture: monotonic clocks and look-alikes are fine.
#include <chrono>

struct Series {
  double time(int step);
};

double elapsed(Series& series) {
  auto t0 = std::chrono::steady_clock::now();  // steady_clock is sanctioned
  auto t1 = std::chrono::steady_clock::now();
  double at = series.time(3);  // member named 'time' with a real argument
  double time = 0.0;           // identifier, no call
  (void)t0;
  (void)t1;
  (void)time;
  return at;
}
