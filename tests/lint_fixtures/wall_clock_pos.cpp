// Positive fixture: wall-clock reads outside util/timer.hpp.
#include <chrono>
#include <ctime>

long stamp_now() {
  auto tp = std::chrono::system_clock::now();  // line 6: wall-clock
  (void)tp;
  return std::time(nullptr);  // line 8: wall-clock
}
