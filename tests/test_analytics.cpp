#include <gtest/gtest.h>

#include <set>

#include "analytics/aggregate.hpp"
#include "analytics/costs.hpp"
#include "analytics/dendrogram.hpp"
#include "analytics/ensemble.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

struct SimFixture {
  SyntheticRegion region;
  DiseaseModel model = covid_model();
  SimOutput output;
  Tick ticks = 80;

  SimFixture() {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;
    config.seed = 99;
    region = generate_region(config);
    SimulationConfig sim_config;
    sim_config.num_ticks = ticks;
    sim_config.seed = 777;
    sim_config.seeds = {SeedSpec{0, 10, 0}};
    CovidParams params;
    params.transmissibility = 0.3;  // big outbreak so all states appear
    model = covid_model(params);
    output = run_simulation(region.network, region.population, model,
                            sim_config);
  }
};

const SimFixture& fixture() {
  static const SimFixture instance;
  return instance;
}

// ----------------------------------------------------------- summary cube -

TEST(SummaryCube, OccupancyConservedEachTick) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  for (Tick t = 0; t < f.ticks; t += 7) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < f.model.state_count(); ++s) {
      total += cube.occupancy(t, static_cast<HealthStateId>(s));
    }
    EXPECT_EQ(total, f.region.population.person_count()) << "tick " << t;
  }
}

TEST(SummaryCube, CumulativeMonotone) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  const HealthStateId exposed = f.model.state_id(covid_states::kExposed);
  for (Tick t = 1; t < f.ticks; ++t) {
    EXPECT_GE(cube.cumulative(t, exposed), cube.cumulative(t - 1, exposed));
  }
}

TEST(SummaryCube, EnteredSumsToCumulative) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  const HealthStateId recovered = f.model.state_id(covid_states::kRecovered);
  std::uint64_t entered_total = 0;
  for (Tick t = 0; t < f.ticks; ++t) {
    entered_total += cube.entered(t, recovered);
  }
  EXPECT_EQ(entered_total, cube.cumulative(f.ticks - 1, recovered));
}

TEST(SummaryCube, SusceptibleOccupancyDecreases) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  const HealthStateId s = f.model.state_id(covid_states::kSusceptible);
  EXPECT_LT(cube.occupancy(f.ticks - 1, s), cube.occupancy(0, s));
}

TEST(SummaryCube, ByteSizeMatchesDimensions) {
  const SummaryCube cube(365, 15);
  // ticks x (states x age groups) x 3 counts x 8 bytes — the Table I
  // summary-size accounting unit.
  EXPECT_EQ(cube.byte_size(), 365ull * 15 * kAgeGroupCount * 3 * 8);
}

TEST(SummaryCube, IndexBoundsChecked) {
  SummaryCube cube(10, 5);
  EXPECT_THROW(cube.at(10, 0, AgeGroup::kAdult), Error);
  EXPECT_THROW(cube.at(0, 5, AgeGroup::kAdult), Error);
}

// ------------------------------------------------------ county aggregation -

TEST(Aggregate, CountySeriesCoverAllCounties) {
  const auto& f = fixture();
  const CountySeries series =
      aggregate_by_county(f.output, f.region.population, f.model, f.ticks,
                          AggregationTarget::kNewConfirmed);
  EXPECT_EQ(series.values.size(), f.region.population.county_count());
  EXPECT_EQ(series.county_fips.size(), series.values.size());
}

TEST(Aggregate, NewConfirmedCountsFirstSymptomaticEntryOnly) {
  const auto& f = fixture();
  const auto state_series =
      aggregate_state_series(f.output, f.region.population, f.model, f.ticks,
                             AggregationTarget::kNewConfirmed);
  double total = 0.0;
  for (double x : state_series) total += x;
  // Replay: count entries into the symptomatic class. Persons who recover
  // via RX failure can be reinfected, so entries may exceed distinct
  // persons — each entry is a new confirmed case.
  std::size_t entries = 0;
  std::set<PersonId> distinct;
  std::vector<HealthStateId> current(f.region.population.person_count(),
                                     f.model.initial_state());
  for (const auto& event : f.output.transitions) {
    const bool was =
        f.model.state(current[event.person]).counts_as_symptomatic;
    const bool is = f.model.state(event.exit_state).counts_as_symptomatic;
    if (!was && is) {
      ++entries;
      distinct.insert(event.person);
    }
    current[event.person] = event.exit_state;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(entries));
  EXPECT_GE(entries, distinct.size());
}

TEST(Aggregate, CumulativeConfirmedMonotone) {
  const auto& f = fixture();
  const auto series =
      aggregate_state_series(f.output, f.region.population, f.model, f.ticks,
                             AggregationTarget::kCumulativeConfirmed);
  for (std::size_t t = 1; t < series.size(); ++t) {
    EXPECT_GE(series[t], series[t - 1]);
  }
  EXPECT_GT(series.back(), 0.0);
}

TEST(Aggregate, HospitalOccupancyNonNegativeAndPeaks) {
  const auto& f = fixture();
  const auto series =
      aggregate_state_series(f.output, f.region.population, f.model, f.ticks,
                             AggregationTarget::kHospitalOccupancy);
  double peak = 0.0;
  for (double x : series) {
    EXPECT_GE(x, 0.0);
    peak = std::max(peak, x);
  }
  EXPECT_GT(peak, 0.0);  // outbreak large enough to hospitalize
}

TEST(Aggregate, DeathsMonotoneAndBelowInfections) {
  const auto& f = fixture();
  const auto deaths =
      aggregate_state_series(f.output, f.region.population, f.model, f.ticks,
                             AggregationTarget::kCumulativeDeaths);
  for (std::size_t t = 1; t < deaths.size(); ++t) {
    EXPECT_GE(deaths[t], deaths[t - 1]);
  }
  EXPECT_LT(deaths.back(), static_cast<double>(f.output.total_infections));
}

TEST(Aggregate, StateSeriesIsCountySum) {
  const auto& f = fixture();
  const CountySeries county =
      aggregate_by_county(f.output, f.region.population, f.model, f.ticks,
                          AggregationTarget::kCumulativeConfirmed);
  const auto state =
      aggregate_state_series(f.output, f.region.population, f.model, f.ticks,
                             AggregationTarget::kCumulativeConfirmed);
  for (Tick t = 0; t < f.ticks; t += 13) {
    double sum = 0.0;
    for (const auto& row : county.values) sum += row[t];
    EXPECT_DOUBLE_EQ(sum, state[t]);
  }
}

TEST(Aggregate, RawOutputBytesProportionalToTransitions) {
  const auto& f = fixture();
  EXPECT_EQ(raw_output_bytes(f.output), f.output.transitions.size() * 40);
}

// ----------------------------------------------------------- dendrogram ---

TEST(Dendrogram, ForestAccountsForEveryFirstInfection) {
  const auto& f = fixture();
  const TransmissionForest forest(f.output.transitions);
  // The forest tracks FIRST infections: persons reinfected after RX
  // failure do not appear twice, so the edge count equals the number of
  // distinct persons ever infected by a contact.
  std::set<PersonId> infected_by_contact;
  for (const auto& event : f.output.transitions) {
    if (event.infector != kNoPerson) infected_by_contact.insert(event.person);
  }
  EXPECT_EQ(forest.infection_count(), infected_by_contact.size());
  EXPECT_LE(forest.infection_count(), f.output.total_infections);
  EXPECT_EQ(forest.tree_count(), 10u);  // the 10 seeds
}

TEST(Dendrogram, TreeSizesSumToInfectedPopulation) {
  const auto& f = fixture();
  const TransmissionForest forest(f.output.transitions);
  std::size_t total = 0;
  for (PersonId root : forest.roots()) total += forest.tree_size(root);
  EXPECT_EQ(total, forest.infection_count() + forest.tree_count());
}

TEST(Dendrogram, DepthPositiveForSpreadingTrees) {
  const auto& f = fixture();
  const TransmissionForest forest(f.output.transitions);
  std::size_t max_depth = 0;
  for (PersonId root : forest.roots()) {
    max_depth = std::max(max_depth, forest.tree_depth(root));
  }
  EXPECT_GT(max_depth, 2u);  // multi-generation chains exist
}

TEST(Dendrogram, InfectionTicksIncreaseDownTree) {
  const auto& f = fixture();
  const TransmissionForest forest(f.output.transitions);
  for (PersonId root : forest.roots()) {
    std::vector<PersonId> stack = {root};
    while (!stack.empty()) {
      const PersonId node = stack.back();
      stack.pop_back();
      for (PersonId child : forest.children(node)) {
        EXPECT_GT(forest.infection_tick(child), forest.infection_tick(node));
        stack.push_back(child);
      }
    }
  }
}

TEST(Dendrogram, MeanOffspringInPlausibleRange) {
  const auto& f = fixture();
  const TransmissionForest forest(f.output.transitions);
  const double r_estimate = forest.mean_offspring();
  EXPECT_GT(r_estimate, 0.3);
  EXPECT_LT(r_estimate, 6.0);
}

TEST(Dendrogram, EmptyLogYieldsEmptyForest) {
  const TransmissionForest forest({});
  EXPECT_EQ(forest.tree_count(), 0u);
  EXPECT_EQ(forest.infection_count(), 0u);
  EXPECT_EQ(forest.infection_tick(42), -1);
}

// ------------------------------------------------------------- ensemble ---

TEST(Ensemble, BandOrderingAndCoverage) {
  std::vector<std::vector<double>> curves;
  for (int i = 0; i < 50; ++i) {
    curves.push_back({static_cast<double>(i), static_cast<double>(2 * i)});
  }
  const EnsembleBand band = ensemble_band(curves, 0.9);
  EXPECT_LE(band.lo[0], band.median[0]);
  EXPECT_LE(band.median[0], band.hi[0]);
  EXPECT_NEAR(band.median[0], 24.5, 0.01);
  EXPECT_NEAR(band.median[1], 49.0, 0.5);
  // An interior observation is covered; an extreme one is not.
  EXPECT_DOUBLE_EQ(band_coverage(band, {25.0, 50.0}), 1.0);
  EXPECT_DOUBLE_EQ(band_coverage(band, {-10.0, 500.0}), 0.0);
}

TEST(Ensemble, MismatchedLengthsRejected) {
  EXPECT_THROW(ensemble_band({{1.0, 2.0}, {1.0}}), Error);
  const EnsembleBand band = ensemble_band({{1.0, 2.0}});
  EXPECT_THROW(band_coverage(band, {1.0}), Error);
}

// ----------------------------------------------------------------- costs --

TEST(Costs, BreakdownConsistentWithCube) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  const MedicalCostBreakdown costs = medical_costs(cube, f.model);
  EXPECT_GT(costs.attended_cases, 0u);
  EXPECT_GT(costs.hospital_days, 0u);
  EXPECT_GT(costs.total(), 0.0);
  EXPECT_DOUBLE_EQ(costs.total(), costs.outpatient + costs.hospital +
                                      costs.ventilator + costs.death);
  // Ventilator days are a subset of ICU time; far fewer than hospital days.
  EXPECT_LT(costs.ventilator_days, costs.hospital_days);
}

TEST(Costs, ScalesWithParameters) {
  const auto& f = fixture();
  const SummaryCube cube =
      build_summary_cube(f.output, f.region.population, f.model, f.ticks);
  MedicalCostParams expensive;
  expensive.hospital_day = 25000.0;
  const auto base = medical_costs(cube, f.model);
  const auto high = medical_costs(cube, f.model, expensive);
  EXPECT_DOUBLE_EQ(high.hospital, base.hospital * 10.0);
  EXPECT_EQ(high.hospital_days, base.hospital_days);
}

}  // namespace
}  // namespace epi
