#include <gtest/gtest.h>

#include <cmath>

#include "calibration/calibrate.hpp"
#include "calibration/mcmc.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace epi {
namespace {

// ---------------------------------------------------------------- MCMC ----

TEST(Mcmc, SamplesStandardNormal) {
  Rng rng(71);
  auto log_density = [](const std::vector<double>& x) {
    return -0.5 * x[0] * x[0];
  };
  McmcConfig config;
  config.samples = 8000;
  config.burn_in = 2000;
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  ASSERT_EQ(result.samples.size(), 8000u);
  std::vector<double> xs;
  for (const auto& s : result.samples) xs.push_back(s[0]);
  EXPECT_NEAR(mean(xs), 0.0, 0.1);
  EXPECT_NEAR(stddev(xs), 1.0, 0.12);
}

TEST(Mcmc, AcceptanceRateIsPostBurnIn) {
  // On a known density the equilibrium acceptance rate is a mixing
  // diagnostic; the burn-in phase (step still adapting) is reported
  // separately so it cannot bias the headline figure.
  Rng rng(73);
  auto log_density = [](const std::vector<double>& x) {
    return -0.5 * x[0] * x[0];
  };
  McmcConfig config;
  config.samples = 6000;
  config.burn_in = 2000;
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  EXPECT_GT(result.acceptance_rate, 0.05);
  EXPECT_LT(result.acceptance_rate, 0.95);
  EXPECT_GT(result.burn_in_acceptance_rate, 0.0);
  EXPECT_LT(result.burn_in_acceptance_rate, 1.0);

  // Start deep in the tail with a large fixed step: the short burn-in is
  // a downhill march (about half of all proposals improve the density),
  // while the equilibrium chain rejects most big jumps. The two reported
  // rates must reflect those disjoint phases.
  McmcConfig tail;
  tail.samples = 2000;
  tail.burn_in = 20;
  tail.initial_step = 20.0;
  tail.adapt_during_burn_in = false;
  Rng rng2(74);
  const McmcResult march = metropolis(log_density, {100.0}, tail, rng2);
  EXPECT_GT(march.burn_in_acceptance_rate, 0.15);
  EXPECT_LT(march.acceptance_rate, 0.2);
  EXPECT_GT(march.burn_in_acceptance_rate, march.acceptance_rate);

  // With a deliberately tiny fixed step nearly every proposal is
  // accepted — and the post-burn-in figure must reflect that even if the
  // burn-in behaved differently.
  McmcConfig tiny;
  tiny.samples = 2000;
  tiny.burn_in = 500;
  tiny.initial_step = 1e-4;
  tiny.adapt_during_burn_in = false;
  Rng rng3(75);
  const McmcResult sticky = metropolis(log_density, {0.0}, tiny, rng3);
  EXPECT_GT(sticky.acceptance_rate, 0.9);
}

TEST(Mcmc, ZeroBurnInHasNoBurnInAcceptance) {
  Rng rng(75);
  auto log_density = [](const std::vector<double>& x) {
    return -0.5 * x[0] * x[0];
  };
  McmcConfig config;
  config.samples = 1000;
  config.burn_in = 0;
  config.adapt_during_burn_in = false;
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  EXPECT_EQ(result.burn_in_acceptance_rate, 0.0);
  EXPECT_GT(result.acceptance_rate, 0.0);
}

TEST(Mcmc, RespectsSupportBoundaries) {
  Rng rng(72);
  auto log_density = [](const std::vector<double>& x) {
    if (x[0] < 0.0 || x[0] > 1.0) return -1e300;
    return 0.0;  // uniform on [0,1]
  };
  McmcConfig config;
  config.samples = 4000;
  config.burn_in = 500;
  const McmcResult result = metropolis(log_density, {0.5}, config, rng);
  for (const auto& s : result.samples) {
    EXPECT_GE(s[0], 0.0);
    EXPECT_LE(s[0], 1.0);
  }
  std::vector<double> xs;
  for (const auto& s : result.samples) xs.push_back(s[0]);
  EXPECT_NEAR(mean(xs), 0.5, 0.06);
}

TEST(Mcmc, TracksBestPoint) {
  Rng rng(73);
  auto log_density = [](const std::vector<double>& x) {
    const double dx = x[0] - 3.0;
    return -dx * dx;
  };
  McmcConfig config;
  config.samples = 3000;
  config.burn_in = 1000;
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  EXPECT_NEAR(result.best_point[0], 3.0, 0.1);
  EXPECT_GT(result.acceptance_rate, 0.05);
  EXPECT_LT(result.acceptance_rate, 0.95);
}

TEST(Mcmc, AdaptationTunesStep) {
  Rng rng(74);
  auto log_density = [](const std::vector<double>& x) {
    return -0.5 * x[0] * x[0] / (0.01 * 0.01);  // very narrow target
  };
  McmcConfig config;
  config.samples = 500;
  config.burn_in = 3000;
  config.initial_step = 1.0;  // far too large for sd = 0.01
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  EXPECT_LT(result.final_step[0], 0.5);  // adapted downward
}

TEST(Mcmc, ThinningReducesSampleCount) {
  Rng rng(75);
  auto log_density = [](const std::vector<double>& x) {
    return -0.5 * x[0] * x[0];
  };
  McmcConfig config;
  config.samples = 100;
  config.burn_in = 100;
  config.thin = 5;
  const McmcResult result = metropolis(log_density, {0.0}, config, rng);
  EXPECT_EQ(result.samples.size(), 100u);
}

TEST(Mcmc, RejectsInvalidStart) {
  Rng rng(76);
  auto log_density = [](const std::vector<double>&) { return -1e300; };
  EXPECT_THROW(metropolis(log_density, {0.0}, McmcConfig{}, rng), Error);
}

// ---------------------------------------------------- metapop calibration -

class MetapopCalibration : public ::testing::Test {
 protected:
  static constexpr double kTrueBeta = 0.4;
  static constexpr double kTrueInfectiousDays = 5.0;

  MetapopCalibration()
      : model_(MetapopModel::with_gravity_coupling({200000, 80000, 40000})) {
    MetapopParams truth;
    truth.beta = kTrueBeta;
    truth.infectious_days = kTrueInfectiousDays;
    seeds_ = {MetapopSeed{0, 20.0}};
    const MetapopOutput out = model_.run_deterministic(truth, 70, seeds_);
    observed_ = out.new_confirmed;
  }

  MetapopModel model_;
  std::vector<MetapopSeed> seeds_;
  std::vector<std::vector<double>> observed_;
};

TEST_F(MetapopCalibration, LikelihoodPeaksNearTruth) {
  const MetapopCalibrator calibrator(model_, observed_, seeds_,
                                     MetapopParams{});
  const double at_truth =
      calibrator.log_likelihood(kTrueBeta, kTrueInfectiousDays);
  EXPECT_GT(at_truth, calibrator.log_likelihood(0.25, kTrueInfectiousDays));
  EXPECT_GT(at_truth, calibrator.log_likelihood(0.6, kTrueInfectiousDays));
  EXPECT_GT(at_truth, calibrator.log_likelihood(kTrueBeta, 3.0));
  EXPECT_GT(at_truth, calibrator.log_likelihood(kTrueBeta, 9.0));
}

TEST_F(MetapopCalibration, McmcRecoversParameters) {
  const MetapopCalibrator calibrator(model_, observed_, seeds_,
                                     MetapopParams{});
  Rng rng(77);
  McmcConfig config;
  config.samples = 400;
  config.burn_in = 400;
  const auto result = calibrator.calibrate(ParamRange{"beta", 0.2, 0.7},
                                           ParamRange{"inf", 3.0, 9.0},
                                           config, rng);
  EXPECT_NEAR(result.map_params.beta, kTrueBeta, 0.05);
  EXPECT_NEAR(result.map_params.infectious_days, kTrueInfectiousDays, 0.8);
}

TEST_F(MetapopCalibration, RejectsMalformedObservations) {
  auto bad = observed_;
  bad.pop_back();  // one county missing
  EXPECT_THROW(MetapopCalibrator(model_, bad, seeds_, MetapopParams{}), Error);
}

// -------------------------------------------------------- agent (GPMSA) ---

// Synthetic stand-in for the EpiHiper prior-design outputs: a logistic
// epidemic whose growth rate is driven by theta[0] and plateau by theta[1].
Vec synthetic_epi_curve(const ParamPoint& theta, std::size_t days) {
  Vec out(days);
  for (std::size_t t = 0; t < days; ++t) {
    const double x = (1000.0 + 9000.0 * theta[1]) /
                     (1.0 + std::exp(-(0.05 + 0.25 * theta[0]) *
                                     (static_cast<double>(t) - 40.0)));
    out[t] = std::log(1.0 + x);
  }
  return out;
}

TEST(AgentCalibrator, PosteriorConcentratesNearTruth) {
  Rng rng(78);
  std::vector<ParamRange> ranges = {{"rate", 0.0, 1.0}, {"plateau", 0.0, 1.0}};
  CalibrationDesign design = make_prior_design(ranges, 60, rng);
  Mat outputs(design.points.size(), 80);
  for (std::size_t i = 0; i < design.points.size(); ++i) {
    outputs.set_row(i, synthetic_epi_curve(design.points[i], 80));
  }
  const ParamPoint truth = {0.55, 0.45};
  Vec observed = synthetic_epi_curve(truth, 80);
  for (double& x : observed) x += rng.normal(0.0, 0.02);

  AgentCalibrator calibrator(design, outputs, observed, 123);
  McmcConfig mcmc;
  mcmc.samples = 1500;
  mcmc.burn_in = 1500;
  const AgentCalibrationResult result = calibrator.calibrate(100, mcmc);

  ASSERT_EQ(result.posterior_configs.size(), 100u);
  std::vector<double> rates, plateaus;
  for (const auto& config : result.posterior_configs) {
    rates.push_back(config[0]);
    plateaus.push_back(config[1]);
  }
  // Posterior tightened around the truth relative to the uniform prior
  // (prior sd of U[0,1] is 0.29).
  EXPECT_NEAR(mean(rates), truth[0], 0.15);
  EXPECT_NEAR(mean(plateaus), truth[1], 0.15);
  EXPECT_LT(stddev(plateaus), 0.2);
  // Fig 16 criterion: observed data inside the 95% band.
  EXPECT_GT(result.coverage95, 0.85);
  EXPECT_GT(result.emulator_variance_captured, 0.9);
}

TEST(AgentCalibrator, PriorDesignHasRequestedShape) {
  Rng rng(79);
  const CalibrationDesign design =
      make_prior_design({{"a", 0.0, 2.0}, {"b", -1.0, 1.0}}, 50, rng);
  EXPECT_EQ(design.points.size(), 50u);
  EXPECT_EQ(design.ranges.size(), 2u);
  for (const auto& p : design.points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 2.0);
    EXPECT_GE(p[1], -1.0);
    EXPECT_LT(p[1], 1.0);
  }
}

}  // namespace
}  // namespace epi
