#include "workflow/calibration_cycle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace epi {
namespace {

// One shared cycle run (it simulates dozens of replicates).
const CalibrationCycleResult& cycle() {
  static const CalibrationCycleResult result = [] {
    CalibrationCycleConfig config;
    config.region = "VT";        // small state keeps the test quick
    config.scale = 1.0 / 400.0;  // ~1560 persons
    config.seed = 20200411;
    config.prior_configs = 36;
    config.posterior_configs = 60;
    config.calibration_days = 70;
    config.horizon_days = 28;
    config.prediction_runs = 12;
    config.mcmc.samples = 1200;
    config.mcmc.burn_in = 800;
    return run_calibration_cycle(config);
  }();
  return result;
}

TEST(CalibrationCycle, PriorDesignIsLhsOverPaperRanges) {
  const auto& design = cycle().prior_design;
  EXPECT_EQ(design.points.size(), 36u);
  ASSERT_EQ(design.ranges.size(), 4u);
  EXPECT_EQ(design.ranges[0].name, "TAU");
  EXPECT_EQ(design.ranges[1].name, "SYMP");
  for (const auto& point : design.points) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_GE(point[d], design.ranges[d].lo);
      EXPECT_LE(point[d], design.ranges[d].hi);
    }
  }
}

TEST(CalibrationCycle, PosteriorWithinPriorSupport) {
  const auto& result = cycle();
  EXPECT_EQ(result.posterior_configs.size(), 60u);
  const auto& ranges = result.prior_design.ranges;
  for (const auto& config : result.posterior_configs) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_GE(config[d], ranges[d].lo - 1e-9);
      EXPECT_LE(config[d], ranges[d].hi + 1e-9);
    }
  }
}

TEST(CalibrationCycle, PosteriorTightensRelativeToPrior) {
  // Fig 15: the calibrated parameters' distributions tighten. At least one
  // of TAU/SYMP should have materially lower spread than the uniform
  // prior (sd of U[lo,hi] = range/sqrt(12)).
  const auto& result = cycle();
  const auto& ranges = result.prior_design.ranges;
  int tightened = 0;
  for (std::size_t d = 0; d < 2; ++d) {  // TAU, SYMP
    std::vector<double> values;
    for (const auto& config : result.posterior_configs) {
      values.push_back(config[d]);
    }
    const double prior_sd = (ranges[d].hi - ranges[d].lo) / std::sqrt(12.0);
    if (stddev(values) < 0.8 * prior_sd) ++tightened;
  }
  EXPECT_GE(tightened, 1);
}

TEST(CalibrationCycle, EmulatorBandMostlyCoversObserved) {
  // Fig 16's goodness-of-fit rule: ground truth inside the 95% band.
  EXPECT_GT(cycle().calibration.coverage95, 0.6);
  EXPECT_GT(cycle().calibration.emulator_variance_captured, 0.8);
}

TEST(CalibrationCycle, ForecastBandShapes) {
  const auto& forecast = cycle().forecast;
  const std::size_t total_days = 70 + 28;
  ASSERT_EQ(forecast.median.size(), total_days);
  for (std::size_t t = 0; t < total_days; ++t) {
    EXPECT_LE(forecast.lo[t], forecast.median[t]);
    EXPECT_LE(forecast.median[t], forecast.hi[t]);
  }
  // Cumulative forecasts are monotone in the median.
  for (std::size_t t = 1; t < total_days; ++t) {
    EXPECT_GE(forecast.median[t], forecast.median[t - 1] - 1e-9);
  }
}

TEST(CalibrationCycle, ObservedSeriesConsistent) {
  const auto& result = cycle();
  EXPECT_EQ(result.observed_cumulative.size(), 70u);
  EXPECT_EQ(result.truth_extension.size(), 98u);
  // Truth extension starts with the observed window.
  for (std::size_t t = 0; t < 70; ++t) {
    EXPECT_DOUBLE_EQ(result.truth_extension[t], result.observed_cumulative[t]);
  }
  EXPECT_GT(result.observed_cumulative.back(), 0.0);
}

TEST(CalibrationCycle, McmcMixed) {
  EXPECT_GT(cycle().calibration.acceptance_rate, 0.05);
  EXPECT_LT(cycle().calibration.acceptance_rate, 0.95);
}

}  // namespace
}  // namespace epi
