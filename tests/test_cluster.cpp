#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/coloring.hpp"
#include "cluster/machine.hpp"
#include "cluster/packing.hpp"
#include "cluster/slurm_sim.hpp"
#include "cluster/task_model.hpp"
#include "cluster/transfer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace epi {
namespace {

// ------------------------------------------------------------- machine ----

TEST(Machine, TableIIBridgesSpec) {
  const ClusterSpec spec = bridges_cluster();
  EXPECT_EQ(spec.nodes, 720u);
  EXPECT_EQ(spec.cores_per_node(), 28u);
  EXPECT_EQ(spec.total_cores(), 20160u);  // "over 20,000 cores"
  EXPECT_DOUBLE_EQ(spec.ram_gb_per_node, 128.0);
  EXPECT_DOUBLE_EQ(spec.window_hours, 10.0);  // 10pm - 8am
}

TEST(Machine, TableIIRivannaSpec) {
  const ClusterSpec spec = rivanna_cluster();
  EXPECT_EQ(spec.nodes, 50u);
  EXPECT_EQ(spec.cores_per_node(), 40u);
  EXPECT_DOUBLE_EQ(spec.ram_gb_per_node, 384.0);
  EXPECT_DOUBLE_EQ(spec.window_hours, 0.0);
}

// ---------------------------------------------------------- task model ----

TEST(TaskModel, NodeCategoriesSmallMediumLarge) {
  EXPECT_EQ(region_node_category(state_by_abbrev("WY")), 2u);
  EXPECT_EQ(region_node_category(state_by_abbrev("VA")), 4u);
  EXPECT_EQ(region_node_category(state_by_abbrev("CA")), 6u);
  EXPECT_EQ(region_node_category(state_by_abbrev("TX")), 6u);
}

TEST(TaskModel, RuntimeGrowsWithPopulationAndCost) {
  const double wy = estimate_task_hours(state_by_abbrev("WY"));
  const double ca = estimate_task_hours(state_by_abbrev("CA"));
  EXPECT_GT(ca, wy * 3.0);
  EXPECT_NEAR(estimate_task_hours(state_by_abbrev("CA"), 2.0), 2.0 * ca, 1e-12);
  // California replicate in the sub-hour band (paper: 100-300 steps at
  // ~3 s/step).
  EXPECT_GT(ca, 0.1);
  EXPECT_LT(ca, 1.2);
}

TEST(TaskModel, WorkflowExpansion) {
  const auto tasks = make_workflow_tasks({"VA", "WY"}, 3, 5);
  EXPECT_EQ(tasks.size(), 30u);
  // ids unique, regions correct.
  std::set<std::uint64_t> ids;
  for (const auto& task : tasks) {
    ids.insert(task.id);
    EXPECT_TRUE(task.region == "VA" || task.region == "WY");
    EXPECT_GT(task.est_hours, 0.0);
  }
  EXPECT_EQ(ids.size(), 30u);
}

TEST(TaskModel, TableISimulationCounts) {
  // Table I: economic/prediction 9180 sims; calibration 15300.
  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  EXPECT_EQ(make_workflow_tasks(regions, 12, 15).size(), 9180u);
  EXPECT_EQ(make_workflow_tasks(regions, 300, 1).size(), 15300u);
}

// ------------------------------------------------------------ coloring ----

TEST(Coloring, CliqueNeedsCeilKOverR) {
  std::vector<std::size_t> clique(6);
  for (std::size_t i = 0; i < 6; ++i) clique[i] = i;
  const ConflictGraph graph = ConflictGraph::union_of_cliques(6, {clique});
  for (std::size_t r : {1u, 2u, 3u, 6u}) {
    const RelaxedColoring coloring = relaxed_coloring(graph, r);
    EXPECT_TRUE(coloring_is_valid(graph, coloring.color, r)) << "r=" << r;
    EXPECT_EQ(coloring.colors_used, clique_color_lower_bound(6, r))
        << "r=" << r;
  }
}

TEST(Coloring, ROneIsProperColoring) {
  // Triangle: r = 1 needs 3 colors.
  ConflictGraph graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(0, 2);
  const RelaxedColoring coloring = relaxed_coloring(graph, 1);
  EXPECT_TRUE(coloring_is_valid(graph, coloring.color, 1));
  EXPECT_EQ(coloring.colors_used, 3u);
}

TEST(Coloring, LargeRCollapsesToOneColor) {
  ConflictGraph graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(2, 3);
  const RelaxedColoring coloring = relaxed_coloring(graph, 10);
  EXPECT_EQ(coloring.colors_used, 1u);
  EXPECT_TRUE(coloring_is_valid(graph, coloring.color, 10));
}

TEST(Coloring, UnionOfCliquesDecomposition) {
  // Paper Step 1: per-region DBs make the conflict graph a union of
  // cliques; each clique colors independently.
  const ConflictGraph graph = ConflictGraph::union_of_cliques(
      9, {{0, 1, 2, 3}, {4, 5, 6}, {7, 8}});
  const RelaxedColoring coloring = relaxed_coloring(graph, 2);
  EXPECT_TRUE(coloring_is_valid(graph, coloring.color, 2));
  EXPECT_EQ(coloring.colors_used, clique_color_lower_bound(4, 2));
}

TEST(Coloring, ValidityCheckerCatchesViolations) {
  ConflictGraph graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  // All the same color: vertex 0 shares with 2 neighbors -> invalid at r=2.
  EXPECT_FALSE(coloring_is_valid(graph, {0, 0, 0}, 2));
  EXPECT_TRUE(coloring_is_valid(graph, {0, 0, 0}, 3));
  EXPECT_FALSE(coloring_is_valid(graph, {0, 0}, 3));  // wrong length
}

TEST(Coloring, InvalidEdgesRejected) {
  ConflictGraph graph(2);
  EXPECT_THROW(graph.add_edge(0, 0), Error);
  EXPECT_THROW(graph.add_edge(0, 5), Error);
}

// Property sweep: random graphs, several r values — coloring always valid.
class ColoringSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColoringSweep, GreedyAlwaysValid) {
  const std::size_t r = GetParam();
  Rng rng(80 + r);
  ConflictGraph graph(60);
  for (int e = 0; e < 300; ++e) {
    const auto u = static_cast<std::size_t>(rng.uniform_index(60));
    const auto v = static_cast<std::size_t>(rng.uniform_index(60));
    if (u != v) graph.add_edge(u, v);
  }
  const RelaxedColoring coloring = relaxed_coloring(graph, r);
  EXPECT_TRUE(coloring_is_valid(graph, coloring.color, r));
  EXPECT_GE(coloring.colors_used, 1u);
}

INSTANTIATE_TEST_SUITE_P(RValues, ColoringSweep,
                         ::testing::Values(1, 2, 3, 5, 10));

// ------------------------------------------------------------- packing ----

std::vector<SimTask> national_tasks() {
  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  return make_workflow_tasks(regions, 12, 15);
}

TEST(Packing, AllTasksPlacedExactlyOnce) {
  const auto tasks = national_tasks();
  for (const auto policy :
       {PackingPolicy::kNextFitArrival, PackingPolicy::kNextFitDecreasing,
        PackingPolicy::kFirstFitDecreasing}) {
    const PackingPlan plan = pack_tasks(tasks, 720, policy);
    std::size_t placed = 0;
    for (const auto& level : plan.levels) placed += level.task_ids.size();
    EXPECT_EQ(placed, tasks.size()) << packing_policy_name(policy);
    EXPECT_EQ(plan.start_hours.size(), tasks.size());
  }
}

TEST(Packing, LevelsRespectNodeCapacity) {
  const auto tasks = national_tasks();
  const PackingPlan plan =
      pack_tasks(tasks, 720, PackingPolicy::kFirstFitDecreasing);
  for (const auto& level : plan.levels) {
    EXPECT_LE(level.nodes_used, 720u);
    EXPECT_GT(level.duration_hours, 0.0);
  }
}

TEST(Packing, LevelsRespectDbBound) {
  const auto tasks = national_tasks();
  const std::uint32_t bound = db_connection_bound();
  const PackingPlan plan =
      pack_tasks(tasks, 720, PackingPolicy::kFirstFitDecreasing, bound);
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const auto& task : tasks) by_id[task.id] = &task;
  for (const auto& level : plan.levels) {
    std::map<std::string, std::uint32_t> usage;
    for (std::uint64_t id : level.task_ids) {
      usage[by_id[id]->region] += by_id[id]->db_connections;
    }
    for (const auto& [region, used] : usage) {
      EXPECT_LE(used, bound) << region;
    }
  }
}

TEST(Packing, DecreasingOrderWithinPlan) {
  const auto tasks = national_tasks();
  const PackingPlan plan =
      pack_tasks(tasks, 720, PackingPolicy::kNextFitDecreasing);
  // Level durations are non-increasing under decreasing-time next fit.
  for (std::size_t i = 1; i < plan.levels.size(); ++i) {
    EXPECT_LE(plan.levels[i].duration_hours,
              plan.levels[i - 1].duration_hours + 1e-12);
  }
}

TEST(Packing, FirstFitBeatsNextFitArrival) {
  // The paper's headline scheduling result, in planned-utilization form.
  const auto tasks = national_tasks();
  const PackingPlan ffdt =
      pack_tasks(tasks, 720, PackingPolicy::kFirstFitDecreasing);
  const PackingPlan arrival =
      pack_tasks(tasks, 720, PackingPolicy::kNextFitArrival);
  EXPECT_GT(ffdt.planned_utilization, arrival.planned_utilization);
  EXPECT_LE(ffdt.makespan_hours, arrival.makespan_hours + 1e-9);
  EXPECT_GT(ffdt.planned_utilization, 0.85);
}

TEST(Packing, SingleTaskPlan) {
  std::vector<SimTask> tasks = {SimTask{0, "VA", 0, 0, 4, 1.5, 28}};
  const PackingPlan plan =
      pack_tasks(tasks, 10, PackingPolicy::kFirstFitDecreasing);
  EXPECT_EQ(plan.levels.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.makespan_hours, 1.5);
  EXPECT_NEAR(plan.planned_utilization, 4.0 * 1.5 / (10.0 * 1.5), 1e-12);
}

TEST(Packing, OversizedTaskRejected) {
  std::vector<SimTask> tasks = {SimTask{0, "VA", 0, 0, 100, 1.0, 28}};
  EXPECT_THROW(pack_tasks(tasks, 10, PackingPolicy::kFirstFitDecreasing),
               Error);
}

// ------------------------------------------------------------ slurm DES ---

TEST(SlurmSim, CompletesAllJobsWithoutWindow) {
  Rng rng(81);
  const auto tasks = make_workflow_tasks({"VA", "WY", "CA"}, 4, 3);
  DesConfig config;
  config.runtime_sigma = 0.0;  // deterministic runtimes
  const DesResult result =
      simulate_cluster(bridges_cluster(), tasks, config, rng);
  EXPECT_EQ(result.jobs.size(), tasks.size());
  EXPECT_EQ(result.unfinished, 0u);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

TEST(SlurmSim, NodeCapacityNeverExceeded) {
  Rng rng(82);
  const auto tasks = national_tasks();
  DesConfig config;
  const DesResult result =
      simulate_cluster(bridges_cluster(), tasks, config, rng);
  // Sweep events and check instantaneous node usage.
  std::vector<std::pair<double, std::int64_t>> events;
  for (const auto& job : result.jobs) {
    events.emplace_back(job.start_hours, job.nodes);
    events.emplace_back(job.end_hours, -static_cast<std::int64_t>(job.nodes));
  }
  std::sort(events.begin(), events.end());
  std::int64_t in_use = 0;
  for (const auto& [time, delta] : events) {
    in_use += delta;
    EXPECT_LE(in_use, 720);
    EXPECT_GE(in_use, 0);
  }
}

TEST(SlurmSim, WindowCutsOffLateJobs) {
  Rng rng(83);
  // Far more work than a 10-hour window can hold on a small cluster.
  ClusterSpec tiny = bridges_cluster();
  tiny.nodes = 12;
  const auto tasks = national_tasks();
  DesConfig config;
  config.window_hours = 10.0;
  const DesResult result = simulate_cluster(tiny, tasks, config, rng);
  EXPECT_GT(result.unfinished, 0u);
  EXPECT_LT(result.jobs.size(), tasks.size());
}

TEST(SlurmSim, BackfillImprovesUtilizationUnderDbPressure) {
  // With a binding DB bound (4 concurrent tasks per region), a strictly
  // in-order queue stalls whenever the head's region is saturated even
  // though nodes are idle; backfill skips past it (the paper's initial
  // unsorted runs vs the tuned schedule).
  Rng rng1(84), rng2(84);
  const auto tasks = national_tasks();
  std::vector<SimTask> shuffled = tasks;
  Rng shuffle_rng(85);
  shuffle_rng.shuffle(shuffled.begin(), shuffled.end());
  DesConfig with_backfill;
  with_backfill.backfill = true;
  DesConfig without_backfill;
  without_backfill.backfill = false;
  const std::uint32_t tight_bound = 4 * 28;
  const DesResult a = simulate_cluster(bridges_cluster(), shuffled,
                                       with_backfill, rng1, tight_bound);
  const DesResult b = simulate_cluster(bridges_cluster(), shuffled,
                                       without_backfill, rng2, tight_bound);
  EXPECT_GT(a.utilization, b.utilization);
}

TEST(SlurmSim, DbBoundThrottlesRegionConcurrency) {
  Rng rng(86);
  // Many single-region tasks; with a bound of 2 tasks' worth of
  // connections, at most 2 run at once despite ample nodes.
  std::vector<SimTask> tasks;
  for (std::uint64_t i = 0; i < 10; ++i) {
    tasks.push_back(SimTask{i, "VA", static_cast<std::uint32_t>(i), 0, 2, 1.0,
                            28});
  }
  DesConfig config;
  config.runtime_sigma = 0.0;
  const DesResult result =
      simulate_cluster(bridges_cluster(), tasks, config, rng, 56);
  // 10 jobs, 2 at a time, 1 hour each -> makespan ~5 hours.
  EXPECT_NEAR(result.makespan_hours, 5.0, 0.01);
}

TEST(SlurmSim, RuntimeNoiseProducesVariance) {
  Rng rng(87);
  std::vector<SimTask> tasks;
  for (std::uint64_t i = 0; i < 200; ++i) {
    tasks.push_back(SimTask{i, "VA", static_cast<std::uint32_t>(i), 0, 2, 1.0,
                            28});
  }
  DesConfig config;
  config.runtime_sigma = 0.3;
  const DesResult result =
      simulate_cluster(bridges_cluster(), tasks, config, rng, 1 << 20);
  std::vector<double> durations;
  for (const auto& job : result.jobs) {
    durations.push_back(job.end_hours - job.start_hours);
  }
  EXPECT_GT(stddev(durations), 0.1);
  EXPECT_NEAR(mean(durations), 1.05, 0.12);  // lognormal mean e^{sigma^2/2}
}

// ------------------------------------------------------------ transfer ----

TEST(Transfer, DurationScalesWithSize) {
  GlobusTransfer wan;
  const double small = wan.transfer("configs", 100'000'000, true);  // 100 MB
  const double large = wan.transfer("raw", 10'000'000'000, false);  // 10 GB
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

TEST(Transfer, LedgerTracksDirections) {
  GlobusTransfer wan;
  wan.transfer("a", 1000, true);
  wan.transfer("b", 2000, true);
  wan.transfer("c", 500, false);
  EXPECT_EQ(wan.total_bytes_to_remote(), 3000u);
  EXPECT_EQ(wan.total_bytes_to_home(), 500u);
  EXPECT_EQ(wan.ledger().size(), 3u);
  EXPECT_GT(wan.total_seconds(), 0.0);
}

TEST(Transfer, TwoTbOneTimeTransferTakesHours) {
  // Table II: 2 TB one-time population shipment. At ~400 MB/s this is
  // roughly 1.4 hours — plausible for the one-time Globus push.
  GlobusTransfer wan;
  const double seconds = wan.transfer("populations", 2'000'000'000'000ULL, true);
  EXPECT_GT(seconds / 3600.0, 1.0);
  EXPECT_LT(seconds / 3600.0, 3.0);
}

}  // namespace
}  // namespace epi
