#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace epi {
namespace {

// ---------------------------------------------------------------- CSV ----

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseQuotedFields) {
  const auto fields = parse_csv_line(R"("hello, world",plain,"with ""quotes""")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "hello, world");
  EXPECT_EQ(fields[1], "plain");
  EXPECT_EQ(fields[2], "with \"quotes\"");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops"), ConfigError);
}

TEST(Csv, ParseTableWithHeader) {
  const CsvTable table = parse_csv("x,y\n1,2\n3,4\n");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 2u);
  EXPECT_EQ(table.cell_int(0, "x"), 1);
  EXPECT_EQ(table.cell_int(1, "y"), 4);
}

TEST(Csv, HandlesCrLf) {
  const CsvTable table = parse_csv("a,b\r\n1,2\r\n");
  EXPECT_EQ(table.cell(0, "b"), "2");
}

TEST(Csv, MissingColumnThrows) {
  const CsvTable table = parse_csv("a\n1\n");
  EXPECT_THROW(table.column("nope"), ConfigError);
  EXPECT_TRUE(table.has_column("a"));
  EXPECT_FALSE(table.has_column("b"));
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), Error);
}

TEST(Csv, NonNumericCellThrows) {
  const CsvTable table = parse_csv("a\nhello\n");
  EXPECT_THROW(table.cell_int(0, "a"), ConfigError);
  EXPECT_THROW(table.cell_double(0, "a"), ConfigError);
}

TEST(Csv, DoubleCellParses) {
  const CsvTable table = parse_csv("v\n3.25\n");
  EXPECT_DOUBLE_EQ(table.cell_double(0, "v"), 3.25);
}

TEST(Csv, WriterEscapes) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, WriterRoundTripsThroughParser) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"h1", "h2"});
  writer.write_row({"a,b", "c\"d"});
  const CsvTable table = parse_csv(out.str());
  EXPECT_EQ(table.cell(0, "h1"), "a,b");
  EXPECT_EQ(table.cell(0, "h2"), "c\"d");
}

TEST(Csv, FormatDoubleRoundTrips) {
  const double value = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(std::stod(CsvWriter::format(value)), value);
}

// --------------------------------------------------------------- JSON ----

TEST(Json, ParseScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse_json("-2e3").as_double(), -2000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const Json j = parse_json(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_EQ(j.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(j.at("d").is_null());
}

TEST(Json, ParseEscapes) {
  const Json j = parse_json(R"("line\nbreak\t\"quoted\" A")");
  EXPECT_EQ(j.as_string(), "line\nbreak\t\"quoted\" A");
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    parse_json("{\"a\": }");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(Json, TrailingGarbageThrows) {
  EXPECT_THROW(parse_json("1 2"), ConfigError);
}

TEST(Json, UnterminatedThrows) {
  EXPECT_THROW(parse_json("[1, 2"), ConfigError);
  EXPECT_THROW(parse_json("{\"a\": 1"), ConfigError);
  EXPECT_THROW(parse_json("\"abc"), ConfigError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = parse_json("42");
  EXPECT_THROW(j.as_string(), ConfigError);
  EXPECT_THROW(j.as_array(), ConfigError);
  EXPECT_THROW(j.at("key"), ConfigError);
}

TEST(Json, IntegerAccessor) {
  EXPECT_EQ(parse_json("7").as_int(), 7);
  EXPECT_THROW(parse_json("7.5").as_int(), ConfigError);
}

TEST(Json, ObjectHelpers) {
  const Json j = parse_json(R"({"x": 1.5, "s": "v", "b": true, "n": 3})");
  EXPECT_DOUBLE_EQ(j.get_double("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(j.get_double("missing", 9.0), 9.0);
  EXPECT_EQ(j.get_string("s", ""), "v");
  EXPECT_EQ(j.get_string("missing", "dft"), "dft");
  EXPECT_TRUE(j.get_bool("b", false));
  EXPECT_EQ(j.get_int("n", 0), 3);
  EXPECT_TRUE(j.contains("x"));
  EXPECT_FALSE(j.contains("zzz"));
}

TEST(Json, DumpCompactRoundTrips) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"nested":{"t":true},"z":null})";
  const Json j = parse_json(text);
  EXPECT_EQ(parse_json(j.dump()), j);
}

TEST(Json, DumpPrettyRoundTrips) {
  const Json j = parse_json(R"({"a": [1, {"b": 2}]})");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse_json(pretty), j);
}

TEST(Json, DumpIntegersWithoutDecimalPoint) {
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, DumpEscapesControlCharacters) {
  EXPECT_EQ(Json(std::string("a\nb")).dump(), "\"a\\nb\"");
}

TEST(Json, MutatingSubscriptBuildsObjects) {
  Json j;
  j["a"] = Json(1.0);
  j["b"] = Json("x");
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").as_string(), "x");
}

TEST(Json, KeyOrderDeterministic) {
  // std::map-backed objects serialize in sorted key order.
  Json j;
  j["zebra"] = Json(1.0);
  j["alpha"] = Json(2.0);
  const std::string text = j.dump();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
}

}  // namespace
}  // namespace epi
