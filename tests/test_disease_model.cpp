#include "epihiper/disease_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace epi {
namespace {

TEST(DwellTime, FixedSamplesConstant) {
  Rng rng(51);
  const DwellTime d = DwellTime::fixed(3.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(d.sample(rng), 3);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(DwellTime, MinimumOneTick) {
  Rng rng(52);
  const DwellTime zero = DwellTime::fixed(0.0);
  EXPECT_EQ(zero.sample(rng), 1);
  const DwellTime tiny = DwellTime::normal(0.1, 0.01);
  for (int i = 0; i < 100; ++i) EXPECT_GE(tiny.sample(rng), 1);
}

TEST(DwellTime, NormalCentersOnMean) {
  Rng rng(53);
  const DwellTime d = DwellTime::normal(6.0, 1.0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(DwellTime, DiscreteMatchesWeights) {
  Rng rng(54);
  const DwellTime d = DwellTime::discrete({{2.0, 0.5}, {8.0, 0.5}});
  int twos = 0, eights = 0;
  for (int i = 0; i < 10000; ++i) {
    const Tick t = d.sample(rng);
    if (t == 2) ++twos;
    else if (t == 8) ++eights;
    else FAIL() << "unexpected dwell " << t;
  }
  EXPECT_NEAR(twos, 5000, 300);
  EXPECT_NEAR(eights, 5000, 300);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(DwellTime, DiscreteRequiresNormalizedProbs) {
  EXPECT_THROW(DwellTime::discrete({{1.0, 0.4}, {2.0, 0.4}}), Error);
  EXPECT_THROW(DwellTime::discrete({}), Error);
}

TEST(DwellTime, JsonRoundTripAllKinds) {
  Rng rng(55);
  for (const DwellTime& original :
       {DwellTime::fixed(4.0), DwellTime::normal(5.0, 1.5),
        DwellTime::discrete({{1.0, 0.3}, {2.0, 0.7}})}) {
    const DwellTime restored = DwellTime::from_json(original.to_json());
    EXPECT_EQ(restored.kind(), original.kind());
    EXPECT_DOUBLE_EQ(restored.mean(), original.mean());
  }
}

TEST(DiseaseModel, DuplicateStateNamesRejected) {
  DiseaseModel m;
  HealthState s;
  s.name = "X";
  m.add_state(s);
  EXPECT_THROW(m.add_state(s), Error);
}

TEST(DiseaseModel, UnknownStateLookupThrows) {
  const DiseaseModel m = covid_model();
  EXPECT_THROW(m.state_id("NoSuchState"), ConfigError);
}

TEST(DiseaseModel, ValidateCatchesBadProbabilitySums) {
  DiseaseModel m;
  HealthState s;
  s.name = "S";
  s.susceptibility = 1.0;
  const HealthStateId sid = m.add_state(s);
  HealthState e;
  e.name = "E";
  const HealthStateId eid = m.add_state(e);
  ProgressionEdge edge;
  edge.to = eid;
  edge.probability = {0.5, 0.5, 0.5, 0.5, 0.5};  // sums to 0.5, not 1 or 0
  edge.dwell = {DwellTime::fixed(1), DwellTime::fixed(1), DwellTime::fixed(1),
                DwellTime::fixed(1), DwellTime::fixed(1)};
  m.add_progression(eid, edge);
  m.set_initial_state(sid);
  m.set_seed_state(eid);
  EXPECT_THROW(m.validate(), Error);
}

TEST(CovidModel, ValidatesAndHasAllStates) {
  const DiseaseModel m = covid_model();
  EXPECT_EQ(m.state_count(), 15u);
  using namespace covid_states;
  for (const char* name :
       {kSusceptible, kExposed, kPresymptomatic, kAsymptomatic, kSymptomatic,
        kAttended, kAttendedHosp, kAttendedDeath, kHospitalized,
        kHospitalizedDeath, kVentilated, kVentilatedDeath, kRecovered,
        kDeceased, kRxFailure}) {
    EXPECT_NO_THROW(m.state_id(name)) << name;
  }
  // 15 states x 5 age groups = 75 stratified states, the regime of the
  // paper's "90 health states" summary dimension.
  EXPECT_EQ(m.state_count() * kAgeGroupCount, 75u);
}

TEST(CovidModel, TableIVAttributes) {
  const DiseaseModel m = covid_model();
  using namespace covid_states;
  EXPECT_DOUBLE_EQ(m.transmissibility(), 0.18);
  EXPECT_DOUBLE_EQ(m.state(m.state_id(kPresymptomatic)).infectivity, 0.8);
  EXPECT_DOUBLE_EQ(m.state(m.state_id(kSymptomatic)).infectivity, 1.0);
  EXPECT_DOUBLE_EQ(m.state(m.state_id(kAsymptomatic)).infectivity, 1.0);
  EXPECT_DOUBLE_EQ(m.state(m.state_id(kSusceptible)).susceptibility, 1.0);
  EXPECT_DOUBLE_EQ(m.state(m.state_id(kRxFailure)).susceptibility, 1.0);
  EXPECT_FALSE(m.state(m.state_id(kRecovered)).susceptible());
  EXPECT_FALSE(m.state(m.state_id(kDeceased)).infectious());
}

TEST(CovidModel, TableIIISymptomaticBranchesSumToOne) {
  const DiseaseModel m = covid_model();
  const auto& edges = m.progressions_from(m.state_id(covid_states::kSymptomatic));
  ASSERT_EQ(edges.size(), 3u);
  for (int g = 0; g < kAgeGroupCount; ++g) {
    double total = 0.0;
    for (const auto& edge : edges) total += edge.probability[g];
    EXPECT_NEAR(total, 1.0, 1e-9) << "age group " << g;
  }
}

TEST(CovidModel, SeverityIncreasesWithAge) {
  const DiseaseModel m = covid_model();
  const auto& edges = m.progressions_from(m.state_id(covid_states::kSymptomatic));
  // Find the hospitalization- and death-path branches (Table III rows):
  const HealthStateId att_h = m.state_id(covid_states::kAttendedHosp);
  const HealthStateId att_d = m.state_id(covid_states::kAttendedDeath);
  for (const auto& edge : edges) {
    if (edge.to == att_h) {
      EXPECT_DOUBLE_EQ(edge.probability[1], 0.01);    // 5-17
      EXPECT_DOUBLE_EQ(edge.probability[4], 0.195);   // 65+
      EXPECT_LT(edge.probability[2], edge.probability[4]);
    }
    if (edge.to == att_d) {
      EXPECT_DOUBLE_EQ(edge.probability[0], 0.0006);
      EXPECT_DOUBLE_EQ(edge.probability[4], 0.017);
    }
  }
}

TEST(CovidModel, SymptomaticFractionParameterized) {
  CovidParams params;
  params.symptomatic_fraction = 0.9;
  const DiseaseModel m = covid_model(params);
  const auto& edges = m.progressions_from(m.state_id(covid_states::kExposed));
  double presympt_prob = 0.0;
  for (const auto& edge : edges) {
    if (edge.to == m.state_id(covid_states::kPresymptomatic)) {
      presympt_prob = edge.probability[2];
    }
  }
  EXPECT_DOUBLE_EQ(presympt_prob, 0.9);
}

TEST(CovidModel, TerminalStatesHaveNoProgressions) {
  const DiseaseModel m = covid_model();
  EXPECT_TRUE(m.progressions_from(m.state_id(covid_states::kRecovered)).empty());
  EXPECT_TRUE(m.progressions_from(m.state_id(covid_states::kDeceased)).empty());
  HealthStateId next;
  Tick dwell;
  Rng rng(56);
  EXPECT_FALSE(m.sample_progression(m.state_id(covid_states::kDeceased),
                                    AgeGroup::kAdult, rng, &next, &dwell));
}

TEST(CovidModel, TransmissionsCoverBothSusceptibleStates) {
  const DiseaseModel m = covid_model();
  // S and RxFailure x {P, Y, A} = 6 transmissions.
  EXPECT_EQ(m.transmissions().size(), 6u);
  const auto& from_s =
      m.transmissions_from(m.state_id(covid_states::kSusceptible));
  EXPECT_EQ(from_s.size(), 3u);
  for (const auto& t : from_s) {
    EXPECT_EQ(t.to, m.state_id(covid_states::kExposed));
  }
}

TEST(CovidModel, JsonRoundTripPreservesStructure) {
  const DiseaseModel original = covid_model();
  const DiseaseModel restored = DiseaseModel::from_json(original.to_json());
  EXPECT_EQ(restored.state_count(), original.state_count());
  EXPECT_EQ(restored.transmissions().size(), original.transmissions().size());
  EXPECT_DOUBLE_EQ(restored.transmissibility(), original.transmissibility());
  EXPECT_EQ(restored.state(restored.initial_state()).name,
            original.state(original.initial_state()).name);
  // Spot-check an age-stratified branch survives the round trip.
  const auto& edges =
      restored.progressions_from(restored.state_id(covid_states::kSymptomatic));
  double total = 0.0;
  for (const auto& edge : edges) total += edge.probability[4];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CovidModel, ProgressionSamplingFollowsProbabilities) {
  const DiseaseModel m = covid_model();
  Rng rng(57);
  const HealthStateId exposed = m.state_id(covid_states::kExposed);
  const HealthStateId presympt = m.state_id(covid_states::kPresymptomatic);
  int to_presympt = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    HealthStateId next;
    Tick dwell;
    ASSERT_TRUE(
        m.sample_progression(exposed, AgeGroup::kAdult, rng, &next, &dwell));
    EXPECT_GE(dwell, 1);
    if (next == presympt) ++to_presympt;
  }
  EXPECT_NEAR(static_cast<double>(to_presympt) / n, 0.65, 0.01);
}

TEST(CovidModel, MeanIncubationAroundSixDays) {
  // E -> P (4 days) -> Y (2 days): symptomatic incubation ~6 days,
  // matching the CDC planning-scenario reconstruction.
  const DiseaseModel m = covid_model();
  Rng rng(58);
  const HealthStateId exposed = m.state_id(covid_states::kExposed);
  const HealthStateId presympt = m.state_id(covid_states::kPresymptomatic);
  double incubation_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 5000; ++i) {
    HealthStateId next;
    Tick dwell1;
    m.sample_progression(exposed, AgeGroup::kAdult, rng, &next, &dwell1);
    if (next != presympt) continue;
    HealthStateId next2;
    Tick dwell2;
    m.sample_progression(presympt, AgeGroup::kAdult, rng, &next2, &dwell2);
    incubation_sum += dwell1 + dwell2;
    ++count;
  }
  EXPECT_NEAR(incubation_sum / count, 6.0, 0.2);
}

}  // namespace
}  // namespace epi
