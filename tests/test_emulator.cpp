#include <gtest/gtest.h>

#include <cmath>

#include "emulator/gp.hpp"
#include "emulator/gpmsa.hpp"
#include "emulator/linalg.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// -------------------------------------------------------------- linalg ----

TEST(Linalg, MatmulKnownProduct) {
  Mat a(2, 3);
  a.set_row(0, {1, 2, 3});
  a.set_row(1, {4, 5, 6});
  Mat b(3, 2);
  b.set_row(0, {7, 8});
  b.set_row(1, {9, 10});
  b.set_row(2, {11, 12});
  const Mat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Linalg, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Mat(2, 3), Mat(2, 3)), Error);
}

TEST(Linalg, TransposeRoundTrip) {
  Mat a(2, 3);
  a.set_row(0, {1, 2, 3});
  a.set_row(1, {4, 5, 6});
  const Mat at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at.at(2, 1), 6.0);
  const Mat back = at.transposed();
  EXPECT_DOUBLE_EQ(back.at(1, 2), 6.0);
}

TEST(Linalg, CholeskyReconstructs) {
  // K = L0 L0^T for a known lower-triangular L0.
  Mat k(3, 3);
  k.set_row(0, {4, 2, 2});
  k.set_row(1, {2, 5, 3});
  k.set_row(2, {2, 3, 6});
  const Mat l = cholesky(k);
  const Mat reconstructed = matmul(l, l.transposed());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(reconstructed.at(i, j), k.at(i, j), 1e-12);
    }
  }
}

TEST(Linalg, CholeskyRejectsNonPd) {
  Mat k(2, 2);
  k.set_row(0, {1, 2});
  k.set_row(1, {2, 1});  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(k), NumericError);
}

TEST(Linalg, CholeskySolveMatchesDirect) {
  Mat k(3, 3);
  k.set_row(0, {4, 1, 0});
  k.set_row(1, {1, 3, 1});
  k.set_row(2, {0, 1, 2});
  const Vec b = {1, 2, 3};
  const Vec x = cholesky_solve(cholesky(k), b);
  const Vec kx = matvec(k, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(kx[i], b[i], 1e-10);
}

TEST(Linalg, LogDetMatchesKnownValue) {
  Mat k(2, 2);
  k.set_row(0, {2, 0});
  k.set_row(1, {0, 8});
  EXPECT_NEAR(log_det_from_cholesky(cholesky(k)), std::log(16.0), 1e-12);
}

TEST(Linalg, TopEigenpairsDiagonal) {
  Mat a(3, 3);
  a.at(0, 0) = 5.0;
  a.at(1, 1) = 3.0;
  a.at(2, 2) = 1.0;
  const EigenPairs eig = top_eigenpairs(a, 2);
  ASSERT_EQ(eig.values.size(), 2u);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-6);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-6);
  EXPECT_NEAR(std::abs(eig.vectors.at(0, 0)), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(eig.vectors.at(1, 1)), 1.0, 1e-6);
}

TEST(Linalg, EigenvectorsOrthonormal) {
  Mat a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a.at(i, j) = 1.0 / (1.0 + static_cast<double>(i + j));  // Hilbert-ish, PSD
    }
  }
  const EigenPairs eig = top_eigenpairs(a, 3);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(dot(eig.vectors.col(k), eig.vectors.col(k)), 1.0, 1e-6);
    for (std::size_t m = k + 1; m < 3; ++m) {
      EXPECT_NEAR(dot(eig.vectors.col(k), eig.vectors.col(m)), 0.0, 1e-5);
    }
  }
}

// ------------------------------------------------------------------ GP ----

TEST(Gp, CorrelationIsOneAtZeroDistance) {
  const Vec rho = {0.5, 0.8};
  EXPECT_DOUBLE_EQ(gp_correlation({0.3, 0.7}, {0.3, 0.7}, rho), 1.0);
}

TEST(Gp, CorrelationDecaysWithDistance) {
  const Vec rho = {0.5};
  const double near = gp_correlation({0.1}, {0.2}, rho);
  const double far = gp_correlation({0.1}, {0.9}, rho);
  EXPECT_GT(near, far);
  // Paper form: rho^{4 d^2}, so d = 0.5 gives exactly rho.
  EXPECT_NEAR(gp_correlation({0.0}, {0.5}, rho), 0.5, 1e-12);
}

TEST(Gp, InterpolatesTrainingDataWithTinyNugget) {
  Mat x(5, 1);
  Vec y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x.at(i, 0) = static_cast<double>(i) / 4.0;
    y[i] = std::sin(3.0 * x.at(i, 0));
  }
  GpHyperparams params;
  params.rho = {0.5};
  params.lambda_w = 1.0;
  params.lambda_nugget = 1e8;
  const GaussianProcess gp(x, y, params);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto p = gp.predict({x.at(i, 0)});
    EXPECT_NEAR(p.mean, y[i], 1e-3);
  }
}

TEST(Gp, PredictionVarianceGrowsAwayFromData) {
  Mat x(3, 1);
  x.at(0, 0) = 0.1;
  x.at(1, 0) = 0.2;
  x.at(2, 0) = 0.3;
  const Vec y = {1.0, 2.0, 1.5};
  GpHyperparams params;
  params.rho = {0.3};
  params.lambda_w = 1.0;
  params.lambda_nugget = 1e6;
  const GaussianProcess gp(x, y, params);
  EXPECT_LT(gp.predict({0.2}).variance, gp.predict({0.95}).variance);
}

TEST(Gp, HyperparamSearchFindsReasonableFit) {
  Rng rng(61);
  Mat x(20, 1);
  Vec y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x.at(i, 0) = static_cast<double>(i) / 19.0;
    y[i] = std::cos(4.0 * x.at(i, 0));
  }
  const GpHyperparams params = fit_gp_hyperparams(x, y, rng);
  const GaussianProcess gp(x, y, params);
  // Interior prediction should track the smooth function.
  EXPECT_NEAR(gp.predict({0.5}).mean, std::cos(2.0), 0.15);
}

TEST(Gp, RejectsBadShapesAndParams) {
  Mat x(3, 1);
  GpHyperparams params;
  params.rho = {0.5, 0.5};  // wrong dimension
  EXPECT_THROW(GaussianProcess(x, Vec(3, 0.0), params), Error);
  params.rho = {0.5};
  params.lambda_w = -1.0;
  EXPECT_THROW(GaussianProcess(x, Vec(3, 0.0), params), Error);
}

// --------------------------------------------------------------- GPMSA ----

// A cheap synthetic "simulator": logistic curve whose rate and plateau are
// the two parameters; outputs a 60-day log-cumulative curve.
Vec toy_simulator(double rate, double plateau) {
  Vec out(60);
  for (std::size_t t = 0; t < 60; ++t) {
    const double x =
        plateau / (1.0 + std::exp(-rate * (static_cast<double>(t) - 30.0)));
    out[t] = std::log(1.0 + x);
  }
  return out;
}

Mat toy_design(std::size_t n, Rng& rng) {
  Mat design(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    design.at(i, 0) = rng.uniform();
    design.at(i, 1) = rng.uniform();
  }
  return design;
}

Mat toy_outputs(const Mat& design) {
  Mat outputs(design.rows(), 60);
  for (std::size_t i = 0; i < design.rows(); ++i) {
    outputs.set_row(i, toy_simulator(0.05 + 0.3 * design.at(i, 0),
                                     500.0 + 4500.0 * design.at(i, 1)));
  }
  return outputs;
}

TEST(Gpmsa, EmulatorReproducesTrainingCurves) {
  Rng rng(62);
  const Mat design = toy_design(40, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 5, rng);
  EXPECT_EQ(emulator.output_length(), 60u);
  EXPECT_EQ(emulator.basis_count(), 5u);
  EXPECT_GT(emulator.variance_captured(), 0.95);
  // Training-point prediction close to truth.
  double worst = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto pred = emulator.predict(design.row(i));
    const Vec truth = outputs.row(i);
    for (std::size_t t = 0; t < 60; ++t) {
      worst = std::max(worst, std::abs(pred.mean[t] - truth[t]));
    }
  }
  EXPECT_LT(worst, 0.5);  // log scale: within ~65% everywhere, usually much closer
}

TEST(Gpmsa, EmulatorGeneralizesToHeldOutPoints) {
  Rng rng(63);
  const Mat design = toy_design(50, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 5, rng);
  double rmse_sum = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Vec theta = {rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)};
    const Vec truth = toy_simulator(0.05 + 0.3 * theta[0],
                                    500.0 + 4500.0 * theta[1]);
    const auto pred = emulator.predict(theta);
    double err = 0.0;
    for (std::size_t t = 0; t < 60; ++t) {
      err += (pred.mean[t] - truth[t]) * (pred.mean[t] - truth[t]);
    }
    rmse_sum += std::sqrt(err / 60.0);
  }
  EXPECT_LT(rmse_sum / 10.0, 0.25);
}

TEST(Gpmsa, DiscrepancyBasisShape) {
  const Mat d = discrepancy_basis(100, 15.0, 10.0, 7);
  EXPECT_EQ(d.rows(), 100u);
  EXPECT_EQ(d.cols(), 7u);
  // Every kernel peaks somewhere strictly inside and is positive.
  for (std::size_t k = 0; k < 7; ++k) {
    double peak = 0.0;
    for (std::size_t t = 0; t < 100; ++t) {
      EXPECT_GT(d.at(t, k), 0.0);
      peak = std::max(peak, d.at(t, k));
    }
    EXPECT_NEAR(peak, 1.0, 0.01);
  }
}

TEST(Gpmsa, CalibrationModelPrefersTruth) {
  Rng rng(64);
  const Mat design = toy_design(40, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 5, rng);
  const Vec truth_theta = {0.6, 0.4};
  Vec observed = toy_simulator(0.05 + 0.3 * truth_theta[0],
                               500.0 + 4500.0 * truth_theta[1]);
  // Small observation noise.
  for (double& x : observed) x += rng.normal(0.0, 0.02);
  const GpmsaCalibrationModel model(emulator, observed);
  const double at_truth = model.log_posterior(truth_theta, 10.0, 400.0);
  const double far_away = model.log_posterior({0.05, 0.95}, 10.0, 400.0);
  EXPECT_GT(at_truth, far_away);
}

TEST(Gpmsa, LogPosteriorRejectsOutOfSupport) {
  Rng rng(65);
  const Mat design = toy_design(20, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 3, rng);
  const GpmsaCalibrationModel model(emulator, outputs.row(0));
  EXPECT_LT(model.log_posterior({-0.1, 0.5}, 1.0, 1.0), -1e200);
  EXPECT_LT(model.log_posterior({0.5, 0.5}, -1.0, 1.0), -1e200);
}

TEST(Gpmsa, PredictiveBandCoversObserved) {
  Rng rng(66);
  const Mat design = toy_design(40, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 5, rng);
  const Vec observed = toy_simulator(0.2, 2000.0);
  const GpmsaCalibrationModel model(emulator, observed);
  // Bands at a generous noise level must cover the observation (Fig 16's
  // goodness-of-fit criterion).
  const auto band = model.predictive_band({0.5, 0.33}, 1.0, 25.0);
  std::size_t inside = 0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t] >= band.mean[t] - 1.96 * band.sd[t] &&
        observed[t] <= band.mean[t] + 1.96 * band.sd[t]) {
      ++inside;
    }
  }
  EXPECT_GT(static_cast<double>(inside) / observed.size(), 0.8);
}

TEST(Gpmsa, ObservedLengthMismatchThrows) {
  Rng rng(67);
  const Mat design = toy_design(10, rng);
  const Mat outputs = toy_outputs(design);
  MultivariateEmulator emulator(design, outputs, 3, rng);
  EXPECT_THROW(GpmsaCalibrationModel(emulator, Vec(10, 0.0)), Error);
}

}  // namespace
}  // namespace epi
