// epilint fixture tests: drive the analyzer as a library over the corpus
// in tests/lint_fixtures/, asserting the exact (rule, line) set for each
// positive fixture and a clean bill for each negative one. Deleting any
// single rule pass from tools/epilint/rules.cpp fails at least one of
// these. The suite ends with the self-check the lint lane relies on: a
// run over the repo's own src/ with the committed baseline must be
// finding-free, and the README env-var table must match what
// `epilint --env-table` renders from kEnvRegistry.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "epilint/epilint.hpp"

namespace {

// Set by tests/CMakeLists.txt.
const std::string kFixtureDir = EPILINT_FIXTURE_DIR;
const std::string kRepoDir = EPILINT_REPO_DIR;

struct RuleAt {
  std::string rule;
  int line;
  bool operator==(const RuleAt&) const = default;
  bool operator<(const RuleAt& other) const {
    return std::tie(line, rule) < std::tie(other.line, other.rule);
  }
};

std::ostream& operator<<(std::ostream& os, const RuleAt& r) {
  return os << r.rule << "@" << r.line;
}

/// Analyzes one fixture (plus its stem-paired header, if any) against the
/// fixture env registry and reduces the findings to (rule, line) pairs.
std::vector<RuleAt> lint_fixture(const std::string& name) {
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  options.env_registry_path = kFixtureDir + "/fixture_env.hpp";
  std::vector<RuleAt> out;
  for (const epilint::Finding& f :
       epilint::analyze({kFixtureDir + "/" + name}, options)) {
    EXPECT_EQ(f.file, kFixtureDir + "/" + name) << f.rule << "@" << f.line;
    EXPECT_TRUE(epilint::known_rules().count(f.rule)) << f.rule;
    EXPECT_FALSE(f.snippet.empty()) << f.rule << "@" << f.line;
    out.push_back({f.rule, f.line});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RuleAt> expect(std::initializer_list<RuleAt> list) {
  std::vector<RuleAt> out(list);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EpilintRules, BannedRandomPositive) {
  EXPECT_EQ(lint_fixture("banned_random_pos.cpp"),
            expect({{"banned-random", 5}, {"banned-random", 6}}));
}

TEST(EpilintRules, BannedRandomNegative) {
  EXPECT_EQ(lint_fixture("banned_random_neg.cpp"), expect({}));
}

TEST(EpilintRules, WallClockPositive) {
  EXPECT_EQ(lint_fixture("wall_clock_pos.cpp"),
            expect({{"wall-clock", 6}, {"wall-clock", 8}}));
}

TEST(EpilintRules, WallClockNegative) {
  EXPECT_EQ(lint_fixture("wall_clock_neg.cpp"), expect({}));
}

TEST(EpilintRules, UnorderedIterPositive) {
  // Member from the paired header, a .begin() walk, and an aliased local.
  EXPECT_EQ(lint_fixture("unordered_iter_pos.cpp"),
            expect({{"unordered-iter", 7},
                    {"unordered-iter", 10},
                    {"unordered-iter", 13}}));
}

TEST(EpilintRules, UnorderedIterNegative) {
  EXPECT_EQ(lint_fixture("unordered_iter_neg.cpp"), expect({}));
}

TEST(EpilintRules, DeterminismTaintPositive) {
  // write_summary -> gather -> accumulate_counts reaches the unordered
  // iteration; the sink line carries both the iteration finding and the
  // taint-path finding.
  EXPECT_EQ(lint_fixture("taint_pos.cpp"),
            expect({{"determinism-taint", 11}, {"unordered-iter", 11}}));
}

TEST(EpilintRules, DeterminismTaintNegative) {
  EXPECT_EQ(lint_fixture("taint_neg.cpp"), expect({}));
}

TEST(EpilintRules, DeterminismTaintMessageNamesThePath) {
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  const auto findings =
      epilint::analyze({kFixtureDir + "/taint_pos.cpp"}, options);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const epilint::Finding& f) { return f.rule == "determinism-taint"; });
  ASSERT_NE(it, findings.end());
  EXPECT_NE(it->message.find("write_summary"), std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("accumulate_counts"), std::string::npos)
      << it->message;
}

TEST(EpilintRules, MpiliteTagMismatchPositive) {
  EXPECT_EQ(lint_fixture("mpilite_tag_pos.cpp"),
            expect({{"mpilite-tag-mismatch", 5}}));
}

TEST(EpilintRules, MpiliteTagMismatchNegative) {
  EXPECT_EQ(lint_fixture("mpilite_tag_neg.cpp"), expect({}));
}

TEST(EpilintRules, MpiliteDivergentCollectivePositive) {
  EXPECT_EQ(lint_fixture("mpilite_collective_pos.cpp"),
            expect({{"mpilite-divergent-collective", 5},
                    {"mpilite-divergent-collective", 13}}));
}

TEST(EpilintRules, MpiliteDivergentCollectiveNegative) {
  EXPECT_EQ(lint_fixture("mpilite_collective_neg.cpp"), expect({}));
}

TEST(EpilintRules, MpiliteRuntimeEntryPositive) {
  EXPECT_EQ(lint_fixture("mpilite_runtime_pos.cpp"),
            expect({{"mpilite-runtime-entry", 4},
                    {"mpilite-runtime-entry", 5}}));
}

TEST(EpilintRules, MpiliteRuntimeEntryNegative) {
  EXPECT_EQ(lint_fixture("mpilite_runtime_neg.cpp"), expect({}));
}

TEST(EpilintRules, EnvPositive) {
  EXPECT_EQ(lint_fixture("env_pos.cpp"),
            expect({{"env-getenv", 6}, {"env-registry", 6}}));
}

TEST(EpilintRules, EnvNegative) {
  EXPECT_EQ(lint_fixture("env_neg.cpp"), expect({}));
}

TEST(EpilintRules, EnvRegistryRuleDisabledWithoutRegistry) {
  // Without an env registry the env-registry rule stays silent but the
  // getenv rule still fires.
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  const auto findings =
      epilint::analyze({kFixtureDir + "/env_pos.cpp"}, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "env-getenv");
}

TEST(EpilintRules, IoRawStreamPositive) {
  EXPECT_EQ(lint_fixture("io_stream_pos.cpp"),
            expect({{"io-raw-stream", 6},
                    {"io-raw-stream", 7},
                    {"io-raw-stream", 8}}));
}

TEST(EpilintRules, IoRawStreamNegative) {
  EXPECT_EQ(lint_fixture("io_stream_neg.cpp"), expect({}));
}

TEST(EpilintRules, IoNonhexFloatPositive) {
  EXPECT_EQ(lint_fixture("io_float_pos.cpp"),
            expect({{"io-nonhex-float", 10},
                    {"io-nonhex-float", 11},
                    {"io-nonhex-float", 12}}));
}

TEST(EpilintRules, IoNonhexFloatNegative) {
  EXPECT_EQ(lint_fixture("io_float_neg.cpp"), expect({}));
}

TEST(EpilintRules, BadWaiverPositive) {
  // The typo'd waiver is itself a finding AND fails to suppress the
  // banned-random hit on the next line.
  EXPECT_EQ(lint_fixture("waiver_pos.cpp"),
            expect({{"bad-waiver", 6}, {"banned-random", 7}}));
}

TEST(EpilintRules, WaiversSuppressNegative) {
  EXPECT_EQ(lint_fixture("waiver_neg.cpp"), expect({}));
}

TEST(EpilintOutput, JsonIsExactAndSorted) {
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  const auto findings =
      epilint::analyze({kFixtureDir + "/banned_random_pos.cpp"}, options);
  ASSERT_EQ(findings.size(), 2u);
  const std::string json = epilint::to_json(findings);
  const std::string expected =
      "[\n"
      "  {\"rule\": \"banned-random\", \"file\": \"" +
      kFixtureDir +
      "/banned_random_pos.cpp\", \"line\": 5, \"snippet\": "
      "\"std::srand(42);          // line 5: banned-random (srand)\", "
      "\"message\": \"srand() (unseeded libc randomness); use the seeded "
      "epi::Rng instead\"},\n"
      "  {\"rule\": \"banned-random\", \"file\": \"" +
      kFixtureDir +
      "/banned_random_pos.cpp\", \"line\": 6, \"snippet\": "
      "\"return std::rand() % 7;  // line 6: banned-random (rand)\", "
      "\"message\": \"rand() (unseeded libc randomness); use the seeded "
      "epi::Rng instead\"}\n"
      "]\n";
  EXPECT_EQ(json, expected);
}

TEST(EpilintOutput, TextCarriesPerRuleSummary) {
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  const auto findings =
      epilint::analyze({kFixtureDir + "/env_pos.cpp",
                        kFixtureDir + "/banned_random_pos.cpp"},
                       options);
  const std::string text = epilint::to_text(findings);
  EXPECT_NE(text.find("banned-random: 2"), std::string::npos) << text;
  EXPECT_NE(text.find("env-getenv: 1"), std::string::npos) << text;
}

TEST(EpilintBaseline, EntriesSuppressByLineAndByFile) {
  epilint::Options options;
  options.include_dirs = {kFixtureDir};
  const std::string file = kFixtureDir + "/banned_random_pos.cpp";
  const auto findings = epilint::analyze({file}, options);
  ASSERT_EQ(findings.size(), 2u);

  // rule|file|line suppresses exactly one finding...
  const auto by_line = epilint::apply_baseline(
      findings, {epilint::baseline_entry(findings[0])});
  ASSERT_EQ(by_line.size(), 1u);
  EXPECT_EQ(by_line[0].line, findings[1].line);

  // ...and rule|file suppresses every finding of that rule in the file.
  const auto by_file =
      epilint::apply_baseline(findings, {"banned-random|" + file});
  EXPECT_TRUE(by_file.empty());
}

// --- The self-checks the lint lane stands on ---------------------------

TEST(EpilintSelfCheck, RepoSourcesAreCleanUnderCommittedBaseline) {
  epilint::Options options;
  options.include_dirs = {kRepoDir + "/src"};
  options.env_registry_path = kRepoDir + "/src/util/env.hpp";
  const auto files = epilint::collect_sources({kRepoDir + "/src"});
  ASSERT_GT(files.size(), 50u);  // really scanning the tree
  const auto findings = epilint::analyze(files, options);
  const auto kept = epilint::apply_baseline(
      findings,
      epilint::load_baseline(kRepoDir + "/tools/epilint/baseline.txt"));
  EXPECT_TRUE(kept.empty()) << epilint::to_text(kept);
}

TEST(EpilintSelfCheck, ReadmeEnvTableMatchesRegistry) {
  const auto registry =
      epilint::parse_env_registry(kRepoDir + "/src/util/env.hpp");
  ASSERT_GE(registry.size(), 10u);
  // Alphabetical and unique, so the rendered table is deterministic.
  for (std::size_t i = 1; i < registry.size(); ++i) {
    EXPECT_LT(registry[i - 1].name, registry[i].name);
  }
  const std::string table = epilint::env_table_markdown(registry);
  std::ifstream in(kRepoDir + "/README.md");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find(table), std::string::npos)
      << "README.md env-var table is stale; regenerate it with "
         "`build/tools/epilint --env-table` (expected block:\n"
      << table << ")";
}

}  // namespace
