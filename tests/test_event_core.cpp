// Event-driven transmission core: event-queue ordering determinism, serial
// and parallel byte-identity of the event mode against both legacy
// exchange modes, quiescence tick-skipping, and the adaptive
// broadcast/ghost switch.
#include "epihiper/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "epihiper/simulation.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// --- EventQueue unit tests ------------------------------------------------

std::vector<TimedEvent> drain(EventQueue& queue) {
  std::vector<TimedEvent> popped;
  TimedEvent event;
  while (queue.pop_due(EventQueue::kNever - 1, &event)) popped.push_back(event);
  return popped;
}

bool strictly_ordered(const std::vector<TimedEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto a = std::tuple(events[i - 1].tick, events[i - 1].kind,
                              events[i - 1].person);
    const auto b = std::tuple(events[i].tick, events[i].kind,
                              events[i].person);
    if (b < a) return false;
  }
  return true;
}

TEST(EventQueue, PopsInTickThenPersonOrder) {
  EventQueue queue;
  queue.schedule(5, EventKind::kProgression, 7);
  queue.schedule(3, EventKind::kProgression, 9);
  queue.schedule(3, EventKind::kProgression, 2);
  queue.schedule(8, EventKind::kProgression, 1);
  const auto popped = drain(queue);
  ASSERT_EQ(popped.size(), 4u);
  EXPECT_EQ(popped[0].tick, 3);
  EXPECT_EQ(popped[0].person, 2u);
  EXPECT_EQ(popped[1].tick, 3);
  EXPECT_EQ(popped[1].person, 9u);
  EXPECT_EQ(popped[2].tick, 5);
  EXPECT_EQ(popped[3].tick, 8);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_tick(), EventQueue::kNever);
}

TEST(EventQueue, PopOrderIndependentOfInsertionOrder) {
  // The pop sequence must be a pure function of the scheduled multiset:
  // insert the same events in many deterministic permutations and require
  // identical drains. (xorshift, fixed seed — no global RNG state.)
  std::vector<TimedEvent> events;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 200; ++i) {
    events.push_back(TimedEvent{static_cast<Tick>(next() % 40),
                                EventKind::kProgression,
                                static_cast<PersonId>(next() % 64)});
  }
  std::vector<std::vector<TimedEvent>> drains;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = events.size(); i > 1; --i) {
      std::swap(events[i - 1], events[next() % i]);
    }
    EventQueue queue;
    for (const TimedEvent& e : events) queue.schedule(e.tick, e.kind, e.person);
    drains.push_back(drain(queue));
  }
  for (const auto& d : drains) {
    ASSERT_EQ(d.size(), events.size());
    EXPECT_TRUE(strictly_ordered(d));
    EXPECT_EQ(d[0].tick, drains[0][0].tick);
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(d[i].tick, drains[0][i].tick) << "event " << i;
      EXPECT_EQ(d[i].person, drains[0][i].person) << "event " << i;
    }
  }
}

TEST(EventQueue, PopDueRespectsTickHorizon) {
  EventQueue queue;
  queue.schedule(4, EventKind::kProgression, 1);
  queue.schedule(6, EventKind::kProgression, 2);
  TimedEvent event;
  EXPECT_FALSE(queue.pop_due(3, &event));
  EXPECT_EQ(queue.next_tick(), 4);
  ASSERT_TRUE(queue.pop_due(4, &event));
  EXPECT_EQ(event.person, 1u);
  EXPECT_FALSE(queue.pop_due(5, &event));
  EXPECT_EQ(queue.next_tick(), 6);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.scheduled(), 2u);
}

// --- Simulation fixtures --------------------------------------------------

const SyntheticRegion& test_region() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;  // ~2350 persons
    config.seed = 99;
    return generate_region(config);
  }();
  return region;
}

SimulationConfig base_config(Tick ticks = 60) {
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 1234;
  config.seeds = {SeedSpec{0, 10, 0}};
  return config;
}

void expect_same_epidemic(const SimOutput& a, const SimOutput& b) {
  EXPECT_EQ(a.total_infections, b.total_infections);
  EXPECT_EQ(a.new_infections_per_tick, b.new_infections_per_tick);
  EXPECT_EQ(a.final_states, b.final_states);
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].tick, b.transitions[i].tick) << "event " << i;
    EXPECT_EQ(a.transitions[i].person, b.transitions[i].person)
        << "event " << i;
    EXPECT_EQ(a.transitions[i].exit_state, b.transitions[i].exit_state)
        << "event " << i;
    EXPECT_EQ(a.transitions[i].infector, b.transitions[i].infector)
        << "event " << i;
  }
}

SimOutput run_mode(ExchangeMode mode, Tick ticks = 60,
                   const InterventionFactory& factory = nullptr) {
  SimulationConfig config = base_config(ticks);
  config.exchange = mode;
  return run_simulation(test_region().network, test_region().population,
                        covid_model(), config, factory);
}

// --- Serial byte-identity -------------------------------------------------

// The event-driven core must replay the per-tick scan byte for byte — the
// exact transition sequence, order included — against both legacy modes.
TEST(EventCore, SerialEventMatchesBothLegacyModesByteForByte) {
  const SimOutput event = run_mode(ExchangeMode::kEvent);
  const SimOutput bcast = run_mode(ExchangeMode::kBroadcast);
  const SimOutput ghost = run_mode(ExchangeMode::kGhostDelta);
  expect_same_epidemic(event, bcast);
  expect_same_epidemic(event, ghost);
  EXPECT_GT(event.events_scheduled, 0u);
  EXPECT_GT(event.events_fired, 0u);
  EXPECT_EQ(event.ticks_executed + event.ticks_skipped, 60u);
  // Legacy modes never skip and schedule no events.
  EXPECT_EQ(bcast.events_scheduled, 0u);
  EXPECT_EQ(bcast.ticks_skipped, 0u);
  EXPECT_EQ(ghost.ticks_skipped, 0u);
}

TEST(EventCore, SameSeedSameEventOrderAcrossRuns) {
  const SimOutput a = run_mode(ExchangeMode::kEvent);
  const SimOutput b = run_mode(ExchangeMode::kEvent);
  expect_same_epidemic(a, b);
  EXPECT_EQ(a.events_scheduled, b.events_scheduled);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.events_stale, b.events_stale);
  EXPECT_EQ(a.ticks_skipped, b.ticks_skipped);
}

// --- Parallel byte-identity (suite name carries "Parallel" so the
// CommChecker CI lane re-runs these under EPI_MPILITE_CHECK=1) -------------

class EventParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EventParallelEquivalence, MatchesSerialBroadcast) {
  const int ranks = GetParam();
  const DiseaseModel model = covid_model();
  SimulationConfig serial_config = base_config(40);
  serial_config.exchange = ExchangeMode::kBroadcast;
  const SimOutput serial = run_simulation(
      test_region().network, test_region().population, model, serial_config);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  SimulationConfig event_config = base_config(40);
  event_config.exchange = ExchangeMode::kEvent;
  const SimOutput parallel =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, event_config, parts, ranks);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.new_infections_per_tick, serial.new_infections_per_tick);
  EXPECT_EQ(parallel.final_states, serial.final_states);
  ASSERT_EQ(parallel.transitions.size(), serial.transitions.size());
  auto key = [](const TransitionEvent& e) {
    return std::tuple(e.tick, e.person, e.exit_state, e.infector);
  };
  std::vector<std::tuple<Tick, PersonId, HealthStateId, PersonId>> s, p;
  for (const auto& e : serial.transitions) s.push_back(key(e));
  for (const auto& e : parallel.transitions) p.push_back(key(e));
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p);
  EXPECT_EQ(parallel.ticks_executed + parallel.ticks_skipped, 40u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, EventParallelEquivalence,
                         ::testing::Values(1, 2, 4, 8));

// --- Quiescence skipping --------------------------------------------------

// Seeds landing late leave a long dormant prefix: the event core must jump
// over it without touching person state and still match the legacy scan.
TEST(EventCore, SkipsDormantPrefixBeforeLateSeeds) {
  SimulationConfig legacy_config = base_config(60);
  legacy_config.seeds = {SeedSpec{0, 10, 30}};  // county 0, 10 seeds, tick 30
  legacy_config.exchange = ExchangeMode::kGhostDelta;
  SimulationConfig event_config = legacy_config;
  event_config.exchange = ExchangeMode::kEvent;
  const DiseaseModel model = covid_model();
  const SimOutput legacy = run_simulation(
      test_region().network, test_region().population, model, legacy_config);
  const SimOutput event = run_simulation(
      test_region().network, test_region().population, model, event_config);
  expect_same_epidemic(event, legacy);
  // Ticks 1..29 are globally dormant (tick 0 always executes); the dormant
  // gap must be skipped, not scanned.
  EXPECT_GE(event.ticks_skipped, 29u);
  EXPECT_EQ(event.ticks_executed + event.ticks_skipped, 60u);
  ASSERT_EQ(event.seconds_per_tick.size(), 60u);
  ASSERT_EQ(event.new_infections_per_tick.size(), 60u);
  ASSERT_EQ(event.memory_bytes_per_tick.size(), 60u);
}

// With zero transmissibility the seeds progress to a terminal state and the
// world goes quiet; the tail of the run must be skipped.
TEST(EventCore, SkipsQuiescentTailAfterEpidemicDies) {
  CovidParams params;
  params.transmissibility = 0.0;
  const DiseaseModel model = covid_model(params);
  SimulationConfig config = base_config(200);
  config.exchange = ExchangeMode::kEvent;
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model, config);
  EXPECT_EQ(out.total_infections, 0u);
  EXPECT_FALSE(out.transitions.empty());  // seeds still progress
  EXPECT_GT(out.ticks_skipped, 100u);
  EXPECT_EQ(out.ticks_executed + out.ticks_skipped, 200u);
}

// Scheduled-action intervention that knows its own quiescent range. Records
// the ticks it actually ran at so the test can pin the skip pattern.
class ScheduledProbe : public Intervention {
 public:
  ScheduledProbe(Tick action_tick, std::vector<Tick>* applied_at)
      : action_tick_(action_tick), applied_at_(applied_at) {}
  std::string name() const override { return "probe"; }
  void apply(Simulation& sim) override { applied_at_->push_back(sim.tick()); }
  Tick quiescent_until(const Simulation& sim) const override {
    return sim.tick() < action_tick_ ? action_tick_ : EventQueue::kNever;
  }

 private:
  Tick action_tick_;
  std::vector<Tick>* applied_at_;
};

TEST(EventCore, QuiescentUntilHintsGateInterventionWakeups) {
  // No seeds, no events: the only activity is the probe's scheduled action
  // at tick 20. The run must execute exactly tick 0 (first tick always
  // runs) and tick 20, skipping the other 28.
  std::vector<Tick> applied_at;
  SimulationConfig config = base_config(30);
  config.seeds.clear();
  config.exchange = ExchangeMode::kEvent;
  auto factory = [&applied_at] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<ScheduledProbe>(20, &applied_at)};
  };
  const SimOutput out =
      run_simulation(test_region().network, test_region().population,
                     covid_model(), config, factory);
  EXPECT_EQ(applied_at, (std::vector<Tick>{0, 20}));
  EXPECT_EQ(out.ticks_executed, 2u);
  EXPECT_EQ(out.ticks_skipped, 28u);
}

TEST(EventCore, DefaultInterventionHintBlocksSkipping) {
  // An intervention without a quiescent_until override may act every tick,
  // so its presence must pin the run to full per-tick execution.
  std::vector<Tick> applied_at;
  SimulationConfig config = base_config(30);
  config.seeds.clear();
  config.exchange = ExchangeMode::kEvent;
  auto factory = [] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<VoluntaryHomeIsolation>(
            VoluntaryHomeIsolation::Config{0.7, 14, 0})};
  };
  const SimOutput out =
      run_simulation(test_region().network, test_region().population,
                     covid_model(), config, factory);
  EXPECT_EQ(out.ticks_executed, 30u);
  EXPECT_EQ(out.ticks_skipped, 0u);
}

// --- Adaptive mode --------------------------------------------------------

InterventionFactory stacked_interventions() {
  return [] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<VoluntaryHomeIsolation>(
            VoluntaryHomeIsolation::Config{0.7, 14, 0}),
        std::make_shared<SchoolClosure>(SchoolClosure::Config{10, 60}),
        std::make_shared<StayAtHome>(StayAtHome::Config{20, 45, 0.6}),
        std::make_shared<ContactTracing>(
            ContactTracing::Config{2, 5, 0.5, 0.7, 10})};
  };
}

TEST(EventCore, SerialAdaptiveMatchesBothFixedModesUnderInterventions) {
  CovidParams params;
  // Hot enough that concurrent infectious crosses the adaptive density
  // threshold even with the intervention stack suppressing spread.
  params.transmissibility = 0.5;
  const DiseaseModel model = covid_model(params);
  auto run_with = [&model](ExchangeMode mode) {
    SimulationConfig config = base_config(50);
    config.exchange = mode;
    return run_simulation(test_region().network, test_region().population,
                          model, config, stacked_interventions());
  };
  const SimOutput adaptive = run_with(ExchangeMode::kAdaptive);
  const SimOutput bcast = run_with(ExchangeMode::kBroadcast);
  const SimOutput ghost = run_with(ExchangeMode::kGhostDelta);
  expect_same_epidemic(adaptive, bcast);
  expect_same_epidemic(adaptive, ghost);
  // The epidemic starts sparse and grows past the density threshold, so
  // the run must genuinely exercise both kernels.
  EXPECT_GT(adaptive.ghost_ticks, 0u);
  EXPECT_GT(adaptive.broadcast_ticks, 0u);
}

class AdaptiveParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveParallelEquivalence, MatchesSerialBroadcastUnderInterventions) {
  const int ranks = GetParam();
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  SimulationConfig serial_config = base_config(50);
  serial_config.exchange = ExchangeMode::kBroadcast;
  const SimOutput serial =
      run_simulation(test_region().network, test_region().population, model,
                     serial_config, stacked_interventions());
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  SimulationConfig adaptive_config = base_config(50);
  adaptive_config.exchange = ExchangeMode::kAdaptive;
  const SimOutput parallel = run_simulation_parallel(
      test_region().network, test_region().population, model, adaptive_config,
      parts, ranks, stacked_interventions());
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.new_infections_per_tick, serial.new_infections_per_tick);
  EXPECT_EQ(parallel.final_states, serial.final_states);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AdaptiveParallelEquivalence,
                         ::testing::Values(2, 4, 8));

// --- EPI_EXCHANGE wiring --------------------------------------------------

TEST(EventCore, ExchangeModeNamesRoundTrip) {
  for (ExchangeMode mode :
       {ExchangeMode::kBroadcast, ExchangeMode::kGhostDelta,
        ExchangeMode::kEvent, ExchangeMode::kAdaptive}) {
    EXPECT_EQ(parse_exchange_mode(exchange_mode_name(mode)), mode);
  }
  EXPECT_THROW(parse_exchange_mode("banana"), Error);
}

TEST(EventCore, EnvOverrideSetsDefaultExchangeMode) {
  ASSERT_EQ(::setenv("EPI_EXCHANGE", "event", 1), 0);
  EXPECT_EQ(default_exchange_mode(), ExchangeMode::kEvent);
  EXPECT_EQ(SimulationConfig{}.exchange, ExchangeMode::kEvent);
  ASSERT_EQ(::setenv("EPI_EXCHANGE", "broadcast", 1), 0);
  EXPECT_EQ(default_exchange_mode(), ExchangeMode::kBroadcast);
  ASSERT_EQ(::unsetenv("EPI_EXCHANGE"), 0);
  EXPECT_EQ(default_exchange_mode(), ExchangeMode::kGhostDelta);
  // An explicit assignment always wins over the env default.
  ASSERT_EQ(::setenv("EPI_EXCHANGE", "adaptive", 1), 0);
  SimulationConfig config;
  config.exchange = ExchangeMode::kBroadcast;
  EXPECT_EQ(config.exchange, ExchangeMode::kBroadcast);
  ASSERT_EQ(::unsetenv("EPI_EXCHANGE"), 0);
}

}  // namespace
}  // namespace epi
