// The deterministic task-pool executor (src/exec/) and its contract with
// the simulation farm: results in submission-index order, exceptions
// rethrown at the first failing index, jobs=1 identical to the serial
// seed path, and parallel farm output byte-identical to serial at any
// worker count — with and without fault injection.
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "resilience/ledger.hpp"
#include "util/error.hpp"
#include "workflow/calibration_cycle.hpp"
#include "workflow/designs.hpp"
#include "workflow/nightly.hpp"

namespace epi {
namespace {

exec::ExecConfig with_jobs(std::size_t jobs) {
  exec::ExecConfig config;
  config.jobs = jobs;
  return config;
}

// ------------------------------------------------------------ plumbing ---

TEST(Executor, JobsFromEnvParsing) {
  ::unsetenv("EPI_JOBS");
  EXPECT_EQ(exec::jobs_from_env(), 1u);
  ::setenv("EPI_JOBS", "4", 1);
  EXPECT_EQ(exec::jobs_from_env(), 4u);
  ::setenv("EPI_JOBS", "", 1);
  EXPECT_EQ(exec::jobs_from_env(), 1u);
  // Malformed values fail loudly instead of silently running serial: a
  // farm that quietly drops to one worker blows the 8am window.
  for (const char* bad : {"0", "-2", "banana", "4x", " 4", "+4"}) {
    ::setenv("EPI_JOBS", bad, 1);
    EXPECT_THROW((void)exec::jobs_from_env(), Error) << "EPI_JOBS=" << bad;
  }
  ::setenv("EPI_JOBS", "8", 1);
  EXPECT_EQ(exec::resolve_jobs(0), 8u);
  EXPECT_EQ(exec::resolve_jobs(3), 3u);  // explicit config wins
  ::unsetenv("EPI_JOBS");
}

TEST(Executor, EffectiveWorkersCaps) {
  // Item count caps the pool: no idle workers for a 2-task farm.
  EXPECT_EQ(exec::effective_workers(8, 1, 2), 2u);
  EXPECT_EQ(exec::effective_workers(0, 1, 100), 1u);
  // Single-threaded tasks: an explicit jobs request is honored even above
  // the core count (oversubscription only costs time-slicing).
  EXPECT_EQ(exec::effective_workers(8, 1, 100), 8u);
  // Rank-parallel tasks (mpilite ranks are threads): workers x ranks is
  // capped against hardware concurrency, never below one worker.
  const std::size_t hw = exec::hardware_limit();
  const std::size_t capped = exec::effective_workers(64, 4, 1000);
  EXPECT_LE(capped * 4, std::max<std::size_t>(hw, 4));
  EXPECT_GE(capped, 1u);
}

// ------------------------------------------------- ordering & identity ---

TEST(Executor, ResultsInSubmissionOrderDespiteCompletionOrder) {
  // Early tasks sleep longest, so completion order is roughly reversed;
  // results must come back in submission order anyway.
  const std::size_t n = 48;
  const auto results = exec::parallel_index_map(
      n,
      [&](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds((n - i) * 40));
        return i * 3 + 1;
      },
      with_jobs(8));
  ASSERT_EQ(results.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[i], i * 3 + 1);
  }
}

TEST(Executor, ParallelMatchesSerialExactly) {
  auto task = [](std::size_t i) {
    // A deterministic per-index value with some arithmetic depth.
    double x = static_cast<double>(i) + 0.5;
    for (int k = 0; k < 1000; ++k) x = x * 1.0000001 + 1.0 / (x + 1.0);
    return x;
  };
  const auto serial = exec::parallel_index_map(256, task, with_jobs(1));
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    const auto parallel = exec::parallel_index_map(256, task, with_jobs(jobs));
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(Executor, VectorOverloadPassesItemAndIndex) {
  const std::vector<std::string> items = {"a", "b", "c", "d", "e"};
  const auto tagged = exec::parallel_map(
      items,
      [](const std::string& item, std::size_t i) {
        return item + std::to_string(i);
      },
      with_jobs(4));
  EXPECT_EQ(tagged,
            (std::vector<std::string>{"a0", "b1", "c2", "d3", "e4"}));
  const auto plain = exec::parallel_map(
      items, [](const std::string& item) { return item + "!"; }, with_jobs(2));
  EXPECT_EQ(plain.size(), items.size());
  EXPECT_EQ(plain[4], "e!");
}

// ------------------------------------------------ exception propagation ---

TEST(Executor, RethrowsAtFirstFailingIndex) {
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    auto poisoned = [&](std::size_t i) -> int {
      if (i == 5) {
        // The earlier failure finishes *later* than the one at index 11,
        // so the pool must pick the failure by index, not by completion.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw Error("poisoned task 5");
      }
      if (i == 11) throw Error("poisoned task 11");
      return static_cast<int>(i);
    };
    try {
      (void)exec::parallel_index_map(32, poisoned, with_jobs(jobs));
      FAIL() << "expected a rethrow at jobs=" << jobs;
    } catch (const Error& error) {
      EXPECT_STREQ(error.what(), "poisoned task 5") << "jobs=" << jobs;
    }
  }
}

TEST(Executor, SerialPathPropagatesUnwrapped) {
  // jobs=1 is the seed code path: the exception escapes the task loop
  // directly, before any later task runs.
  std::atomic<int> ran{0};
  auto poisoned = [&](std::size_t i) -> int {
    if (i == 2) throw ConfigError("bad config");
    ++ran;
    return 0;
  };
  EXPECT_THROW(
      { (void)exec::parallel_index_map(10, poisoned, with_jobs(1)); },
      ConfigError);
  EXPECT_EQ(ran.load(), 2);
}

// ------------------------------------------------------- observability ---

TEST(Executor, RecordsCountersGaugeAndSpans) {
  obs::Session session({"", /*deterministic_timing=*/true});
  exec::ExecConfig config = with_jobs(4);
  config.label = "unit";
  config.obs.trace = &session.trace();
  config.obs.metrics = &session.metrics();
  config.obs.deterministic_timing = true;
  (void)exec::parallel_index_map(
      10, [](std::size_t i) { return i; }, config);
  EXPECT_EQ(session.metrics().counter("exec.tasks"), 10u);
  EXPECT_DOUBLE_EQ(session.metrics().gauge("exec.workers"), 4.0);
  EXPECT_DOUBLE_EQ(session.metrics().gauge("exec.queue_depth"), 10.0);
  // Deterministic sessions suppress the schedule-dependent steal counter.
  EXPECT_EQ(session.metrics().counter("exec.steal"), 0u);
  // One span per task on per-worker lanes of the "exec" process, plus a
  // submit->start->finish flow chain (3 events) per task.
  EXPECT_EQ(session.trace().event_count(), 40u);

  // Turning flows off leaves exactly the task spans.
  obs::Session bare({"", /*deterministic_timing=*/true});
  config.obs.trace = &bare.trace();
  config.obs.metrics = nullptr;
  config.obs.flow = false;
  (void)exec::parallel_index_map(
      10, [](std::size_t i) { return i; }, config);
  EXPECT_EQ(bare.trace().event_count(), 10u);
}

TEST(Executor, DeterministicTracesAreByteIdenticalAcrossRuns) {
  auto traced_run = [] {
    obs::Session session({"", /*deterministic_timing=*/true});
    exec::ExecConfig config = with_jobs(4);
    config.label = "det";
    config.obs.trace = &session.trace();
    config.obs.metrics = &session.metrics();
    config.obs.deterministic_timing = true;
    (void)exec::parallel_index_map(
        17,
        [](std::size_t i) {
          std::this_thread::sleep_for(std::chrono::microseconds(i * 7));
          return i;
        },
        config);
    return session.trace().to_json().dump() +
           session.metrics().snapshot().dump();
  };
  EXPECT_EQ(traced_run(), traced_run());
}

// --------------------------------------------------------- ledger merge ---

TEST(Executor, LedgerMergeAppendsInTaskIndexOrder) {
  ResilienceLedger merged;
  merged.record(FaultKind::kNodeCrash, 1.0, "pre-existing");
  std::vector<ResilienceLedger> locals(3);
  locals[0].record(FaultKind::kSimRetry, 0.0, "task 0");
  locals[1].add_retry_wait_seconds(7200.0);
  locals[2].record(FaultKind::kSimRetry, 0.0, "task 2a");
  locals[2].record(FaultKind::kDbDrop, 0.5, "task 2b");
  for (const ResilienceLedger& local : locals) merged.merge(local);
  ASSERT_EQ(merged.events().size(), 4u);
  EXPECT_EQ(merged.events()[0].detail, "pre-existing");
  EXPECT_EQ(merged.events()[1].detail, "task 0");
  EXPECT_EQ(merged.events()[2].detail, "task 2a");
  EXPECT_EQ(merged.events()[3].detail, "task 2b");
  EXPECT_DOUBLE_EQ(merged.summary().retry_wait_hours, 2.0);
  EXPECT_EQ(merged.summary().sim_retries, 2u);
}

// ----------------------------------------------- farm byte-identity -------

CalibrationCycleConfig tiny_cycle_config() {
  CalibrationCycleConfig config;
  config.region = "VT";
  config.scale = 1.0 / 400.0;
  config.seed = 20200411;
  config.prior_configs = 8;
  config.posterior_configs = 20;
  config.calibration_days = 40;
  config.horizon_days = 14;
  config.prediction_runs = 4;
  config.mcmc.samples = 300;
  config.mcmc.burn_in = 200;
  return config;
}

TEST(FarmIdentity, CycleByteIdenticalAcrossWorkerCounts) {
  CalibrationCycleConfig config = tiny_cycle_config();
  config.jobs = 1;
  const std::string serial = serialize(run_calibration_cycle(config));
  EXPECT_GT(serial.size(), 1000u);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    config.jobs = jobs;
    EXPECT_EQ(serial, serialize(run_calibration_cycle(config)))
        << "jobs=" << jobs;
  }
}

TEST(FarmIdentity, CycleByteIdenticalUnderFaultInjection) {
  // The per-task resilience ledgers must merge in task-index order, so a
  // faulty farm reports the same events no matter the completion order.
  CalibrationCycleConfig config = tiny_cycle_config();
  config.faults.enabled = true;
  config.faults.sim_failure_prob = 0.3;
  config.jobs = 1;
  const CalibrationCycleResult serial = run_calibration_cycle(config);
  EXPECT_GT(serial.resilience.sim_retries, 0u);  // the weather actually hit
  const std::string serial_dump = serialize(serial);
  config.jobs = 4;
  EXPECT_EQ(serial_dump, serialize(run_calibration_cycle(config)));
}

TEST(FarmIdentity, NightlyReportByteIdenticalAcrossWorkerCounts) {
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT"};
  auto run_with_jobs = [&](std::size_t jobs) {
    NightlyConfig config;
    config.scale = 1.0 / 8000.0;
    config.sample_executions = 4;
    config.sample_regions = design.regions;
    config.executed_days = 30;
    config.deterministic_timing = true;
    config.jobs = jobs;
    NightlyWorkflow workflow(config);
    return workflow.run(design);
  };
  const WorkflowReport serial = run_with_jobs(1);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_with_jobs(jobs)) << "jobs=" << jobs;
  }
}

TEST(FarmIdentity, NightlyReportByteIdenticalUnderFaultInjection) {
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT"};
  auto run_with_jobs = [&](std::size_t jobs) {
    NightlyConfig config;
    config.scale = 1.0 / 8000.0;
    config.sample_executions = 4;
    config.sample_regions = design.regions;
    config.executed_days = 30;
    config.deterministic_timing = true;
    config.jobs = jobs;
    config.faults.enabled = true;
    config.faults.seed = 99;
    config.faults.node_mtbf_hours = 30.0 * 24.0;
    config.faults.wan_failure_prob = 0.02;
    config.faults.db_drop_prob = 0.2;
    config.checkpoint.interval_ticks = 60;
    NightlyWorkflow workflow(config);
    return workflow.run(design);
  };
  const WorkflowReport serial = run_with_jobs(1);
  const WorkflowReport parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel);
  // The faulty weather actually exercised the resilience path.
  EXPECT_NE(serial.resilience, ResilienceSummary{});
}

}  // namespace
}  // namespace epi
