#include "epihiper/interventions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

const SyntheticRegion& test_region() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;
    config.seed = 99;
    return generate_region(config);
  }();
  return region;
}

SimulationConfig base_config(Tick ticks = 80) {
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 4321;
  config.seeds = {SeedSpec{0, 10, 0}};
  return config;
}

std::uint64_t infections_with(
    const std::function<std::vector<std::shared_ptr<Intervention>>()>& factory,
    Tick ticks = 80, double tau = 0.22) {
  CovidParams params;
  params.transmissibility = tau;
  const DiseaseModel model = covid_model(params);
  const SimOutput out =
      run_simulation(test_region().network, test_region().population, model,
                     base_config(ticks), factory);
  return out.total_infections;
}

TEST(Interventions, BaselineOutbreakIsLarge) {
  // Sanity anchor for the reduction tests below.
  EXPECT_GT(infections_with(nullptr), 200u);
}

TEST(Interventions, VhiReducesInfections) {
  const auto baseline = infections_with(nullptr);
  const auto with_vhi = infections_with([] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<VoluntaryHomeIsolation>(
            VoluntaryHomeIsolation::Config{0.9, 14, 0})};
  });
  EXPECT_LT(with_vhi, baseline);
}

TEST(Interventions, SchoolClosureCutsSchoolTransmission) {
  CovidParams params;
  params.transmissibility = 0.22;
  const DiseaseModel model = covid_model(params);
  const SimOutput out = run_simulation(
      test_region().network, test_region().population, model, base_config(80),
      [] {
        return std::vector<std::shared_ptr<Intervention>>{
            std::make_shared<SchoolClosure>(SchoolClosure::Config{0, 1 << 30})};
      });
  // With schools closed from tick 0, no transmission may occur on a
  // school-context edge.
  const ContactNetwork& net = test_region().network;
  for (const auto& event : out.transitions) {
    if (event.infector == kNoPerson) continue;
    for (EdgeIndex e = net.in_begin(event.person); e < net.in_end(event.person);
         ++e) {
      const Contact& c = net.contact(e);
      if (c.source != event.infector) continue;
      // The infecting edge is ambiguous if multiple edges connect the
      // pair; assert that at least one non-school edge exists.
      const bool school_edge =
          c.target_activity == static_cast<std::uint8_t>(ActivityType::kSchool) ||
          c.source_activity == static_cast<std::uint8_t>(ActivityType::kSchool) ||
          c.target_activity == static_cast<std::uint8_t>(ActivityType::kCollege) ||
          c.source_activity == static_cast<std::uint8_t>(ActivityType::kCollege);
      if (!school_edge) goto next_event;
    }
    FAIL() << "transmission through closed school context";
  next_event:;
  }
}

TEST(Interventions, StayAtHomeStrongerWithCompliance) {
  auto sh_factory = [](double compliance) {
    return [compliance] {
      return std::vector<std::shared_ptr<Intervention>>{
          std::make_shared<StayAtHome>(StayAtHome::Config{10, 300, compliance})};
    };
  };
  const auto weak = infections_with(sh_factory(0.2));
  const auto strong = infections_with(sh_factory(0.9));
  EXPECT_LT(strong, weak);
}

TEST(Interventions, ReopeningRevivesSpread) {
  // SH forever vs SH ending with a full reopen: the reopened run infects
  // at least as many.
  const auto closed = infections_with([] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<StayAtHome>(StayAtHome::Config{10, 1 << 30, 0.8})};
  });
  const auto reopened = infections_with([] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<StayAtHome>(StayAtHome::Config{10, 40, 0.8}),
        std::make_shared<PartialReopening>(PartialReopening::Config{40, 1.0})};
  });
  EXPECT_GE(reopened, closed);
}

TEST(Interventions, PartialReopeningLevelMonotone) {
  auto ro_factory = [](double level) {
    return [level] {
      return std::vector<std::shared_ptr<Intervention>>{
          std::make_shared<StayAtHome>(StayAtHome::Config{5, 30, 0.9}),
          std::make_shared<PartialReopening>(
              PartialReopening::Config{30, level})};
    };
  };
  const auto quarter = infections_with(ro_factory(0.25), 100);
  const auto full = infections_with(ro_factory(1.0), 100);
  EXPECT_LE(quarter, full);
}

TEST(Interventions, TestAndIsolateReduces) {
  const auto baseline = infections_with(nullptr);
  const auto with_ta = infections_with([] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<TestAndIsolate>(TestAndIsolate::Config{0, 0.3, 14})};
  });
  EXPECT_LT(with_ta, baseline);
}

TEST(Interventions, ContactTracingReduces) {
  const auto baseline = infections_with(nullptr);
  const auto with_ct = infections_with([] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<ContactTracing>(
            ContactTracing::Config{1, 0, 0.9, 0.9, 14})};
  });
  EXPECT_LT(with_ct, baseline);
}

TEST(Interventions, DepthTwoTracesMorePeople) {
  auto run_ct = [&](int depth) {
    auto tracer = std::make_shared<ContactTracing>(
        ContactTracing::Config{depth, 0, 0.8, 0.8, 14});
    CovidParams params;
    params.transmissibility = 0.22;
    const DiseaseModel model = covid_model(params);
    run_simulation(test_region().network, test_region().population, model,
                   base_config(60), [&] {
                     return std::vector<std::shared_ptr<Intervention>>{tracer};
                   });
    return tracer->expansions();
  };
  const auto d1 = run_ct(1);
  const auto d2 = run_ct(2);
  EXPECT_GT(d2, d1);  // distance-2 touches many more nodes (Fig 7 bottom)
}

TEST(Interventions, InvalidDepthRejected) {
  EXPECT_THROW(ContactTracing(ContactTracing::Config{3, 0, 0.5, 0.5, 14}),
               Error);
  EXPECT_THROW(ContactTracing(ContactTracing::Config{0, 0, 0.5, 0.5, 14}),
               Error);
}

TEST(Interventions, PulsingShutdownAlternates) {
  CovidParams params;
  params.transmissibility = 0.22;
  const DiseaseModel model = covid_model(params);
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(40));
  sim.add_intervention(std::make_shared<PulsingShutdown>(
      PulsingShutdown::Config{0, 5, 5, 0.8}));
  sim.run();
  // After 40 ticks the phase is (40 - 0) % 10 = 0 -> "on".
  EXPECT_FALSE(sim.stay_home_active());  // run() ended; last applied tick 39
}

TEST(Interventions, StackNamesMatchFig7) {
  const auto& names = intervention_stack_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "base");
  EXPECT_EQ(names.back(), "base+D2CT");
  for (const auto& name : names) {
    const auto stack = make_intervention_stack(name);
    EXPECT_GE(stack.size(), 3u);  // base = VHI + SC + SH
  }
  EXPECT_THROW(make_intervention_stack("bogus"), Error);
}

TEST(Interventions, JsonFactoryBuildsEveryType) {
  for (const char* spec_text : {
           R"({"type": "VHI", "compliance": 0.8})",
           R"({"type": "SC", "start": 5, "end": 60})",
           R"({"type": "SH", "start": 10, "end": 50, "compliance": 0.7})",
           R"({"type": "RO", "reopenTick": 50, "level": 0.5})",
           R"({"type": "TA", "dailyDetection": 0.1})",
           R"({"type": "PS", "onDays": 7, "offDays": 7})",
           R"({"type": "D1CT"})",
           R"({"type": "D2CT", "traceCompliance": 0.9})",
       }) {
    const auto intervention = intervention_from_json(parse_json(spec_text));
    ASSERT_NE(intervention, nullptr) << spec_text;
  }
  EXPECT_THROW(intervention_from_json(parse_json(R"({"type": "XYZ"})")),
               ConfigError);
}

TEST(Interventions, JsonNamesMatchTypes) {
  EXPECT_EQ(intervention_from_json(parse_json(R"({"type": "D2CT"})"))->name(),
            "D2CT");
  EXPECT_EQ(intervention_from_json(parse_json(R"({"type": "VHI"})"))->name(),
            "VHI");
}

// Parallel equivalence with interventions active — the hard case: contact
// tracing crosses partitions, stay-home flags are rank-local.
class InterventionParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InterventionParallelEquivalence, MatchesSerial) {
  const int ranks = GetParam();
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  const SimulationConfig config = base_config(50);
  auto factory = [] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<VoluntaryHomeIsolation>(
            VoluntaryHomeIsolation::Config{0.7, 14, 0}),
        std::make_shared<SchoolClosure>(SchoolClosure::Config{10, 60}),
        std::make_shared<StayAtHome>(StayAtHome::Config{20, 45, 0.6}),
        std::make_shared<ContactTracing>(
            ContactTracing::Config{2, 5, 0.5, 0.7, 10})};
  };
  const SimOutput serial =
      run_simulation(test_region().network, test_region().population, model,
                     config, factory);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  const SimOutput parallel = run_simulation_parallel(
      test_region().network, test_region().population, model, config, parts,
      ranks, factory);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.final_states, serial.final_states);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, InterventionParallelEquivalence,
                         ::testing::Values(2, 4));

// Ghost-halo exchange under intervention load: contact tracing isolates
// *remote* persons (exercising the owner-routed isolation path) and
// isolation flips the advertised records of still-infectious persons
// (exercising the changed-record deltas, not just became/left). The
// partitioned ghost-delta run must match the serial broadcast reference
// on every output the epidemic defines.
class GhostHaloInterventionEquivalence : public ::testing::TestWithParam<int> {
};

TEST_P(GhostHaloInterventionEquivalence, MatchesSerialBroadcast) {
  const int ranks = GetParam();
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  auto factory = [] {
    return std::vector<std::shared_ptr<Intervention>>{
        std::make_shared<VoluntaryHomeIsolation>(
            VoluntaryHomeIsolation::Config{0.7, 14, 0}),
        std::make_shared<SchoolClosure>(SchoolClosure::Config{10, 60}),
        std::make_shared<StayAtHome>(StayAtHome::Config{20, 45, 0.6}),
        std::make_shared<ContactTracing>(
            ContactTracing::Config{2, 5, 0.5, 0.7, 10})};
  };
  SimulationConfig serial_config = base_config(50);
  serial_config.exchange = ExchangeMode::kBroadcast;
  SimulationConfig ghost_config = base_config(50);
  ghost_config.exchange = ExchangeMode::kGhostDelta;
  const SimOutput serial =
      run_simulation(test_region().network, test_region().population, model,
                     serial_config, factory);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  const SimOutput parallel = run_simulation_parallel(
      test_region().network, test_region().population, model, ghost_config,
      parts, ranks, factory);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.new_infections_per_tick, serial.new_infections_per_tick);
  EXPECT_EQ(parallel.final_states, serial.final_states);
  ASSERT_EQ(parallel.transitions.size(), serial.transitions.size());
  auto key = [](const TransitionEvent& e) {
    return std::tuple(e.tick, e.person, e.exit_state, e.infector);
  };
  std::vector<std::tuple<Tick, PersonId, HealthStateId, PersonId>> s, p;
  for (const auto& e : serial.transitions) s.push_back(key(e));
  for (const auto& e : parallel.transitions) p.push_back(key(e));
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p);
  if (ranks > 1) {
    EXPECT_GT(parallel.ghost_exchange_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GhostHaloInterventionEquivalence,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace epi
