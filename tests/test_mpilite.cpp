#include "mpilite/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace epi::mpilite {
namespace {

TEST(Mpilite, SingleRankRuns) {
  std::atomic<int> calls{0};
  Runtime::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Mpilite, RanksGetDistinctIds) {
  std::vector<int> seen(4, -1);
  Runtime::run(4, [&](Comm& comm) { seen[comm.rank()] = comm.rank(); });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[r], r);
}

TEST(Mpilite, PointToPointDelivers) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 5, std::vector<int>{1, 2, 3});
    } else {
      const auto received = comm.recv<int>(0, 5);
      EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Mpilite, MessagesNonOvertakingPerTag) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        comm.send<int>(1, 7, std::vector<int>{i});
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 7)[0], i);
      }
    }
  });
}

TEST(Mpilite, TagsKeepStreamsSeparate) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::vector<int>{111});
      comm.send<int>(1, 2, std::vector<int>{222});
    } else {
      // Receive in reverse tag order: must still match by tag.
      EXPECT_EQ(comm.recv<int>(0, 2)[0], 222);
      EXPECT_EQ(comm.recv<int>(0, 1)[0], 111);
    }
  });
}

TEST(Mpilite, EmptyMessageDelivered) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 3, std::vector<double>{});
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 3).empty());
    }
  });
}

TEST(Mpilite, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  Runtime::run(4, [&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 4) violated = true;
    comm.barrier();  // reusable
  });
  EXPECT_FALSE(violated.load());
}

TEST(Mpilite, AllreduceSum) {
  Runtime::run(3, [](Comm& comm) {
    const double result = comm.allreduce(static_cast<double>(comm.rank() + 1),
                                         ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(result, 6.0);  // 1 + 2 + 3
  });
}

TEST(Mpilite, AllreduceMinMax) {
  Runtime::run(4, [](Comm& comm) {
    const double value = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce(value, ReduceOp::kMin), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(value, ReduceOp::kMax), 3.0);
  });
}

TEST(Mpilite, AllreduceLogicalOr) {
  Runtime::run(3, [](Comm& comm) {
    const double mine = comm.rank() == 1 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kLogicalOr), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(0.0, ReduceOp::kLogicalOr), 0.0);
  });
}

TEST(Mpilite, AllreduceVectorElementwise) {
  Runtime::run(2, [](Comm& comm) {
    const std::vector<double> mine = {static_cast<double>(comm.rank()), 10.0};
    const auto out = comm.allreduce(std::span<const double>(mine),
                                    ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 20.0);
  });
}

TEST(Mpilite, AllreduceInt64ExactBeyondDoublePrecision) {
  // (2^53 + 1) is not representable as a double — the old route through
  // the double allreduce silently rounded it. The integer path must not.
  constexpr std::int64_t big = (std::int64_t{1} << 53) + 1;
  Runtime::run(3, [](Comm& comm) {
    const std::int64_t sum = comm.allreduce(big, ReduceOp::kSum);
    EXPECT_EQ(sum, 3 * big);  // 3*2^53 + 3, off by 1+ if rounded
    const std::vector<std::int64_t> mine = {
        big + comm.rank(), -static_cast<std::int64_t>(comm.rank()),
        comm.rank() == 2 ? std::int64_t{1} : std::int64_t{0}};
    const auto out =
        comm.allreduce(std::span<const std::int64_t>(mine), ReduceOp::kSum);
    EXPECT_EQ(out[0], 3 * big + 3);
    EXPECT_EQ(out[1], -3);
    EXPECT_EQ(out[2], 1);
    EXPECT_EQ(comm.allreduce(std::int64_t{comm.rank()} - 1, ReduceOp::kMin),
              -1);
    EXPECT_EQ(comm.allreduce(big + comm.rank(), ReduceOp::kMax), big + 2);
    EXPECT_EQ(comm.allreduce(std::int64_t{0}, ReduceOp::kLogicalOr), 0);
    EXPECT_EQ(comm.allreduce(std::int64_t{comm.rank() == 1 ? 7 : 0},
                             ReduceOp::kLogicalOr),
              1);
  });
}

TEST(Mpilite, AllgathervConcatenatesInRankOrder) {
  Runtime::run(3, [](Comm& comm) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    const auto all = comm.allgatherv(mine);
    const std::vector<int> expected = {0, 1, 1, 2, 2, 2};
    EXPECT_EQ(all, expected);
  });
}

TEST(Mpilite, AlltoallvRoutesPersonalizedMessages) {
  Runtime::run(3, [](Comm& comm) {
    std::vector<std::vector<int>> outbox(3);
    for (int dest = 0; dest < 3; ++dest) {
      outbox[dest] = {comm.rank() * 10 + dest};
    }
    const auto inbox = comm.alltoallv(outbox);
    for (int src = 0; src < 3; ++src) {
      ASSERT_EQ(inbox[src].size(), 1u);
      EXPECT_EQ(inbox[src][0], src * 10 + comm.rank());
    }
  });
}

TEST(Mpilite, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    Runtime::run(3, [root](Comm& comm) {
      std::vector<double> value;
      if (comm.rank() == root) value = {42.0, static_cast<double>(root)};
      const auto out = comm.broadcast(value, root);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_DOUBLE_EQ(out[0], 42.0);
      EXPECT_DOUBLE_EQ(out[1], static_cast<double>(root));
    });
  }
}

TEST(Mpilite, ExceptionOnOneRankPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw Error("rank 1 failed");
                     }
                     // Other ranks block; the abort must wake them.
                     comm.barrier();
                     comm.recv<int>(1, 0);
                   }),
      Error);
}

TEST(Mpilite, BytesSentAccounted) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<std::uint64_t>(1, 0, std::vector<std::uint64_t>{1, 2, 3, 4});
      EXPECT_EQ(comm.bytes_sent(), 32u);
    } else {
      comm.recv<std::uint64_t>(0, 0);
      EXPECT_EQ(comm.bytes_sent(), 0u);
    }
  });
}

TEST(Mpilite, InvalidRankOrTagThrows) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send<int>(5, 0, std::vector<int>{1}), Error);
      EXPECT_THROW(comm.send<int>(1, -1, std::vector<int>{1}), Error);
      comm.send<int>(1, 0, std::vector<int>{1});
    } else {
      comm.recv<int>(0, 0);
    }
  });
}

TEST(Mpilite, ManyRanksStress) {
  // Ring pass with 16 ranks exercises mailbox contention.
  Runtime::run(16, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send<int>(next, 9, std::vector<int>{comm.rank()});
    EXPECT_EQ(comm.recv<int>(prev, 9)[0], prev);
  });
}

}  // namespace
}  // namespace epi::mpilite
