// Core mpilite semantics. These tests are backend-agnostic: the proc CI
// lane re-runs this binary under EPI_MPILITE_BACKEND=shm, where every rank
// above 0 is a forked process. Two consequences shape the style here:
//
//   * gtest EXPECT_* inside a rank body is invisible from a child process,
//     so rank bodies assert by throwing (require below) — the exception
//     ships back through the launcher and fails the test there;
//   * ranks share no address space, so cross-rank observations travel
//     through the communicator (allgatherv) instead of captured variables.
#include "mpilite/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>

namespace epi::mpilite {
namespace {

void require(bool condition, const std::string& what) {
  if (!condition) throw Error("rank assertion failed: " + what);
}

template <typename T>
void require_eq(const T& actual, const T& expected, const std::string& what) {
  if (actual == expected) return;
  std::ostringstream oss;
  oss << "rank assertion failed: " << what;
  if constexpr (std::is_arithmetic_v<T>) {
    oss << " (actual " << actual << ", expected " << expected << ")";
  }
  throw Error(oss.str());
}

/// Pins the thread backend for one test (saving/restoring the variable), for
/// the few tests whose mechanism is inherently single-process.
class ThreadBackendGuard {
 public:
  ThreadBackendGuard() {
    const char* current = std::getenv("EPI_MPILITE_BACKEND");
    if (current != nullptr) saved_ = current;
    had_value_ = current != nullptr;
    setenv("EPI_MPILITE_BACKEND", "thread", 1);
  }
  ~ThreadBackendGuard() {
    if (had_value_) {
      setenv("EPI_MPILITE_BACKEND", saved_.c_str(), 1);
    } else {
      unsetenv("EPI_MPILITE_BACKEND");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

TEST(Mpilite, SingleRankRuns) {
  std::atomic<int> calls{0};
  // A 1-rank group always runs rank 0 on the calling thread (both
  // backends), so the captured counter is observable.
  Runtime::run(1, [&](Comm& comm) {
    require_eq(comm.rank(), 0, "rank of a singleton group");
    require_eq(comm.size(), 1, "size of a singleton group");
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Mpilite, RanksGetDistinctIds) {
  Runtime::run(4, [](Comm& comm) {
    const auto all = comm.allgatherv(std::vector<int>{comm.rank()});
    require_eq(all, std::vector<int>{0, 1, 2, 3}, "gathered rank ids");
  });
}

TEST(Mpilite, PointToPointDelivers) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 5, std::vector<int>{1, 2, 3});
    } else {
      require_eq(comm.recv<int>(0, 5), std::vector<int>{1, 2, 3},
                 "received payload");
    }
  });
}

TEST(Mpilite, MessagesNonOvertakingPerTag) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        comm.send<int>(1, 7, std::vector<int>{i});
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        require_eq(comm.recv<int>(0, 7)[0], i, "FIFO order per tag");
      }
    }
  });
}

TEST(Mpilite, TagsKeepStreamsSeparate) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::vector<int>{111});
      comm.send<int>(1, 2, std::vector<int>{222});
    } else {
      // Receive in reverse tag order: must still match by tag.
      require_eq(comm.recv<int>(0, 2)[0], 222, "tag-2 payload");
      require_eq(comm.recv<int>(0, 1)[0], 111, "tag-1 payload");
    }
  });
}

TEST(Mpilite, EmptyMessageDelivered) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 3, std::vector<double>{});
    } else {
      require(comm.recv<double>(0, 3).empty(), "empty payload delivered");
    }
  });
}

TEST(Mpilite, BarrierSynchronizes) {
  // Observes the barrier through a shared atomic, which only exists with
  // ranks as threads; the shm barrier is covered by the cross-backend
  // identity and stress tests (test_mpilite_shm.cpp).
  ThreadBackendGuard thread_backend;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  Runtime::run(4, [&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 4) violated = true;
    comm.barrier();  // reusable
  });
  EXPECT_FALSE(violated.load());
}

TEST(Mpilite, AllreduceSum) {
  Runtime::run(3, [](Comm& comm) {
    const double result = comm.allreduce(static_cast<double>(comm.rank() + 1),
                                         ReduceOp::kSum);
    require_eq(result, 6.0, "sum allreduce");  // 1 + 2 + 3
  });
}

TEST(Mpilite, AllreduceMinMax) {
  Runtime::run(4, [](Comm& comm) {
    const double value = static_cast<double>(comm.rank());
    require_eq(comm.allreduce(value, ReduceOp::kMin), 0.0, "min allreduce");
    require_eq(comm.allreduce(value, ReduceOp::kMax), 3.0, "max allreduce");
  });
}

TEST(Mpilite, AllreduceLogicalOr) {
  Runtime::run(3, [](Comm& comm) {
    const double mine = comm.rank() == 1 ? 1.0 : 0.0;
    require_eq(comm.allreduce(mine, ReduceOp::kLogicalOr), 1.0,
               "logical-or with one contributor");
    require_eq(comm.allreduce(0.0, ReduceOp::kLogicalOr), 0.0,
               "logical-or with no contributor");
  });
}

TEST(Mpilite, AllreduceVectorElementwise) {
  Runtime::run(2, [](Comm& comm) {
    const std::vector<double> mine = {static_cast<double>(comm.rank()), 10.0};
    const auto out = comm.allreduce(std::span<const double>(mine),
                                    ReduceOp::kSum);
    require_eq(out[0], 1.0, "element 0 of vector allreduce");
    require_eq(out[1], 20.0, "element 1 of vector allreduce");
  });
}

TEST(Mpilite, AllreduceInt64ExactBeyondDoublePrecision) {
  // (2^53 + 1) is not representable as a double — the old route through
  // the double allreduce silently rounded it. The integer path must not.
  constexpr std::int64_t big = (std::int64_t{1} << 53) + 1;
  Runtime::run(3, [](Comm& comm) {
    const std::int64_t sum = comm.allreduce(big, ReduceOp::kSum);
    require_eq(sum, 3 * big, "exact int64 sum");  // off by 1+ if rounded
    const std::vector<std::int64_t> mine = {
        big + comm.rank(), -static_cast<std::int64_t>(comm.rank()),
        comm.rank() == 2 ? std::int64_t{1} : std::int64_t{0}};
    const auto out =
        comm.allreduce(std::span<const std::int64_t>(mine), ReduceOp::kSum);
    require_eq(out[0], 3 * big + 3, "element 0 of int64 vector allreduce");
    require_eq(out[1], std::int64_t{-3}, "element 1 of int64 vector allreduce");
    require_eq(out[2], std::int64_t{1}, "element 2 of int64 vector allreduce");
    require_eq(comm.allreduce(std::int64_t{comm.rank()} - 1, ReduceOp::kMin),
               std::int64_t{-1}, "int64 min");
    require_eq(comm.allreduce(big + comm.rank(), ReduceOp::kMax), big + 2,
               "int64 max");
    require_eq(comm.allreduce(std::int64_t{0}, ReduceOp::kLogicalOr),
               std::int64_t{0}, "int64 logical-or of zeros");
    require_eq(comm.allreduce(std::int64_t{comm.rank() == 1 ? 7 : 0},
                              ReduceOp::kLogicalOr),
               std::int64_t{1}, "int64 logical-or with one contributor");
  });
}

TEST(Mpilite, AllgathervConcatenatesInRankOrder) {
  Runtime::run(3, [](Comm& comm) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    const auto all = comm.allgatherv(mine);
    require_eq(all, std::vector<int>{0, 1, 1, 2, 2, 2},
               "rank-ordered concatenation");
  });
}

TEST(Mpilite, AlltoallvRoutesPersonalizedMessages) {
  Runtime::run(3, [](Comm& comm) {
    std::vector<std::vector<int>> outbox(3);
    for (int dest = 0; dest < 3; ++dest) {
      outbox[dest] = {comm.rank() * 10 + dest};
    }
    const auto inbox = comm.alltoallv(outbox);
    for (int src = 0; src < 3; ++src) {
      require_eq(inbox[src].size(), std::size_t{1}, "inbox slice size");
      require_eq(inbox[src][0], src * 10 + comm.rank(), "routed payload");
    }
  });
}

TEST(Mpilite, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    Runtime::run(3, [root](Comm& comm) {
      std::vector<double> value;
      if (comm.rank() == root) value = {42.0, static_cast<double>(root)};
      const auto out = comm.broadcast(value, root);
      require_eq(out.size(), std::size_t{2}, "broadcast payload size");
      require_eq(out[0], 42.0, "broadcast element 0");
      require_eq(out[1], static_cast<double>(root), "broadcast element 1");
    });
  }
}

TEST(Mpilite, ExceptionOnOneRankPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw Error("rank 1 failed");
                     }
                     // Other ranks block; the abort must wake them.
                     comm.barrier();
                     comm.recv<int>(1, 0);
                   }),
      Error);
}

TEST(Mpilite, BytesSentAccounted) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<std::uint64_t>(1, 0, std::vector<std::uint64_t>{1, 2, 3, 4});
      require_eq(comm.bytes_sent(), std::uint64_t{32}, "sender accounting");
    } else {
      comm.recv<std::uint64_t>(0, 0);
      require_eq(comm.bytes_sent(), std::uint64_t{0}, "receiver accounting");
    }
  });
}

TEST(Mpilite, InvalidRankOrTagThrows) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      bool threw = false;
      try {
        comm.send<int>(5, 0, std::vector<int>{1});
      } catch (const Error&) {
        threw = true;
      }
      require(threw, "send to out-of-range rank must throw");
      threw = false;
      try {
        comm.send<int>(1, -1, std::vector<int>{1});
      } catch (const Error&) {
        threw = true;
      }
      require(threw, "send with negative tag must throw");
      comm.send<int>(1, 0, std::vector<int>{1});
    } else {
      comm.recv<int>(0, 0);
    }
  });
}

TEST(Mpilite, ManyRanksStress) {
  // Ring pass with 16 ranks exercises mailbox (or shm ring) contention.
  Runtime::run(16, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send<int>(next, 9, std::vector<int>{comm.rank()});
    require_eq(comm.recv<int>(prev, 9)[0], prev, "ring neighbour payload");
  });
}

}  // namespace
}  // namespace epi::mpilite
