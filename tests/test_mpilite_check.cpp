// Seeded-violation tests for the mpilite CommChecker (check.hpp): each of
// the four violation classes must be detected, a deadlock must terminate
// with a report instead of hanging, and a clean run must produce zero
// reports and byte-identical results with the checker on.
#include "mpilite/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "mpilite/comm.hpp"

namespace epi::mpilite {
namespace {

/// Short watchdog patience: the seeded deadlocks below are wedged from the
/// start, so the only wait is the watchdog's own confirmation window.
CheckOptions fast_watchdog() {
  CheckOptions options;
  options.deadlock_timeout_s = 0.25;
  return options;
}

std::size_t count_kind(const std::vector<CheckReport>& reports,
                       CheckKind kind) {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [kind](const CheckReport& r) { return r.kind == kind; }));
}

// --- Collective mismatch ----------------------------------------------

TEST(MpiliteCheck, MismatchedCollectivesFlagged) {
  // Rank 0 enters barrier while ranks 1 and 2 enter allreduce: the group
  // wedges (the watchdog unhangs it) and the collective histories disagree
  // at position #0.
  const auto reports = Runtime::run_checked(
      3,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.barrier();
        } else {
          comm.allreduce(1.0, ReduceOp::kSum);
        }
      },
      fast_watchdog());
  EXPECT_GE(count_kind(reports, CheckKind::kCollectiveMismatch), 1u);
  // The mismatch message names both collectives.
  bool described = false;
  for (const CheckReport& r : reports) {
    if (r.kind != CheckKind::kCollectiveMismatch) continue;
    described = r.message.find("barrier") != std::string::npos &&
                r.message.find("allreduce") != std::string::npos;
    if (described) break;
  }
  EXPECT_TRUE(described);
}

TEST(MpiliteCheck, AllreduceOpMismatchFlaggedWithoutHanging) {
  // Same collective, different ReduceOp: the exchange completes (this is
  // the silent-corruption case), so only the checker can flag it.
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    comm.allreduce(1.0, comm.rank() == 0 ? ReduceOp::kSum : ReduceOp::kMax);
  });
  ASSERT_EQ(count_kind(reports, CheckKind::kCollectiveMismatch), 1u);
  EXPECT_EQ(count_kind(reports, CheckKind::kDeadlock), 0u);
}

TEST(MpiliteCheck, BroadcastRootMismatchFlagged) {
  // Both ranks reach the broadcast with different roots; rank 1 (root=1)
  // returns immediately while rank 0 waits for a broadcast from rank 1
  // that never comes — watchdog plus history mismatch.
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        comm.broadcast(std::int64_t{7}, 1 - comm.rank());
      },
      fast_watchdog());
  EXPECT_GE(count_kind(reports, CheckKind::kCollectiveMismatch), 1u);
}

TEST(MpiliteCheck, ExtraCollectiveOnOneRankFlagged) {
  // Rank 1's extra allgatherv wedges it (rank 0 never contributes); the
  // watchdog unhangs the run and the history-length divergence names the
  // extra call.
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        std::vector<int> mine = {comm.rank()};
        comm.allgatherv(mine);
        if (comm.rank() == 1) comm.allgatherv(mine);
      },
      fast_watchdog());
  EXPECT_FALSE(reports.empty());
}

// --- Message leaks -----------------------------------------------------

TEST(MpiliteCheck, UnreceivedSendReportedAtFinalize) {
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 4, std::vector<int>{1, 2, 3});
      comm.send<int>(1, 9, std::vector<int>{4});  // never received
    } else {
      comm.recv<int>(0, 4);
    }
  });
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, CheckKind::kMessageLeak);
  EXPECT_NE(reports[0].message.find("rank 0"), std::string::npos);
  EXPECT_NE(reports[0].message.find("rank 1"), std::string::npos);
  EXPECT_NE(reports[0].message.find("tag 9"), std::string::npos);
}

TEST(MpiliteCheck, LeakCountsMultipleMessagesPerKey) {
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) comm.send<int>(1, 2, std::vector<int>{i});
    } else {
      comm.recv<int>(0, 2);  // one of three
    }
  });
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, CheckKind::kMessageLeak);
  EXPECT_NE(reports[0].message.find("2 messages"), std::string::npos);
}

// --- Deadlock ----------------------------------------------------------

TEST(MpiliteCheck, RecvRecvCycleFiresWatchdogInsteadOfHanging) {
  // Two ranks each wait for the other to send first: the classic cycle.
  // Without the checker this hangs forever; with it the watchdog aborts
  // the group and dumps each rank's blocked call site.
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        const int peer = 1 - comm.rank();
        comm.recv<int>(peer, 0);                     // blocks forever
        comm.send<int>(peer, 0, std::vector<int>{1});  // never reached
      },
      fast_watchdog());
  ASSERT_EQ(count_kind(reports, CheckKind::kDeadlock), 2u);
  for (const CheckReport& r : reports) {
    EXPECT_NE(r.message.find("recv(source="), std::string::npos);
    EXPECT_NE(r.message.find("last completed operation"), std::string::npos);
  }
}

TEST(MpiliteCheck, DeadlockDumpNamesBlockedCollective) {
  // One rank finished, the other waits at a barrier nobody else will
  // reach: a done rank counts as "never going to help".
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) comm.barrier();
      },
      fast_watchdog());
  ASSERT_EQ(count_kind(reports, CheckKind::kDeadlock), 1u);
  bool names_barrier = false;
  for (const CheckReport& r : reports) {
    if (r.kind == CheckKind::kDeadlock &&
        r.message.find("barrier()") != std::string::npos) {
      names_barrier = true;
    }
  }
  EXPECT_TRUE(names_barrier);
}

TEST(MpiliteCheck, SlowRankIsNotADeadlock) {
  // One rank sends late; the receiver blocks well past the watchdog
  // timeout, but the sender is Running the whole time, so the watchdog
  // must not fire.
  CheckOptions options;
  options.deadlock_timeout_s = 0.1;
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          comm.send<int>(1, 0, std::vector<int>{42});
        } else if (comm.recv<int>(0, 0)[0] != 42) {
          // Throwing, not EXPECT: rank 1 may be a forked process (shm
          // backend), where a gtest failure would be invisible.
          throw Error("late message corrupted");
        }
      },
      options);
  EXPECT_TRUE(reports.empty()) << format_reports(reports);
}

// --- Rank / tag misuse -------------------------------------------------

TEST(MpiliteCheck, SendToOutOfRangeRankReported) {
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.send<int>(5, 0, std::vector<int>{1});
  });
  ASSERT_EQ(count_kind(reports, CheckKind::kRankMisuse), 1u);
  bool actionable = false;
  for (const CheckReport& r : reports) {
    if (r.kind == CheckKind::kRankMisuse) {
      actionable = r.message.find("ranks 0..1") != std::string::npos;
    }
  }
  EXPECT_TRUE(actionable);
}

TEST(MpiliteCheck, ReservedAndNegativeTagsReported) {
  const auto negative = Runtime::run_checked(1, [](Comm& comm) {
    comm.send<int>(0, -3, std::vector<int>{1});
  });
  ASSERT_EQ(count_kind(negative, CheckKind::kTagMisuse), 1u);

  const auto reserved = Runtime::run_checked(1, [](Comm& comm) {
    comm.send<int>(0, 1 << 30, std::vector<int>{1});
  });
  ASSERT_EQ(count_kind(reserved, CheckKind::kTagMisuse), 1u);
  EXPECT_NE(reserved[0].message.find("reserved"), std::string::npos);
}

TEST(MpiliteCheck, RecvFromInvalidRankReported) {
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.recv<int>(7, 0);
  });
  EXPECT_EQ(count_kind(reports, CheckKind::kRankMisuse), 1u);
}

TEST(MpiliteCheck, SelfSendDiagnosedButStillWorks) {
  // mpilite buffers, so the transfer succeeds and the run is otherwise
  // clean — but the checker warns that this pattern deadlocks under
  // rendezvous-mode MPI.
  std::vector<int> got;
  const auto reports = Runtime::run_checked(1, [&](Comm& comm) {
    comm.send<int>(0, 1, std::vector<int>{9});
    got = comm.recv<int>(0, 1);
  });
  EXPECT_EQ(got, (std::vector<int>{9}));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, CheckKind::kSelfSend);
  EXPECT_EQ(count_kind(reports, CheckKind::kMessageLeak), 0u);
}

// --- Clean runs --------------------------------------------------------

/// A representative workload touching every primitive: point-to-point
/// ring traffic, all collectives, and tag multiplexing. Returns a flat
/// digest so checked/unchecked runs can be compared byte for byte.
std::vector<double> exercise_everything(Comm& comm) {
  std::vector<double> digest;
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.send<int>(next, 11, std::vector<int>{comm.rank() * 100});
  comm.send<int>(next, 12, std::vector<int>{comm.rank() * 1000});
  digest.push_back(comm.recv<int>(prev, 12)[0]);
  digest.push_back(comm.recv<int>(prev, 11)[0]);

  comm.barrier();
  const std::vector<double> mine = {static_cast<double>(comm.rank()), 2.0};
  for (double v : comm.allreduce(std::span<const double>(mine), ReduceOp::kSum))
    digest.push_back(v);
  digest.push_back(comm.allreduce(static_cast<double>(comm.rank()),
                                  ReduceOp::kMax));

  std::vector<int> contribution(static_cast<std::size_t>(comm.rank()) + 1,
                                comm.rank());
  for (int v : comm.allgatherv(contribution)) digest.push_back(v);

  std::vector<std::vector<int>> outbox(static_cast<std::size_t>(comm.size()));
  for (int d = 0; d < comm.size(); ++d) outbox[d] = {comm.rank() * 10 + d};
  for (const auto& in : comm.alltoallv(outbox))
    for (int v : in) digest.push_back(v);

  std::vector<double> payload;
  if (comm.rank() == 1) payload = {3.5, 4.5};
  for (double v : comm.broadcast(payload, 1)) digest.push_back(v);
  comm.barrier();
  return digest;
}

TEST(MpiliteCheck, CleanRunZeroReportsAndByteIdenticalResults) {
  // Every rank's digest is gathered through the communicator: captured
  // per-rank vectors would silently stay empty for forked ranks under the
  // shm backend, and rank 0's body runs on the launching thread in both
  // backends, so its captures are always observable.
  constexpr int kRanks = 4;
  std::vector<double> unchecked;
  Runtime::run(kRanks, [&](Comm& comm) {
    const auto all = comm.allgatherv(exercise_everything(comm));
    if (comm.rank() == 0) unchecked = all;
  });

  std::vector<double> checked;
  const auto reports = Runtime::run_checked(kRanks, [&](Comm& comm) {
    const auto all = comm.allgatherv(exercise_everything(comm));
    if (comm.rank() == 0) checked = all;
  });

  EXPECT_TRUE(reports.empty()) << format_reports(reports);
  ASSERT_FALSE(unchecked.empty());
  ASSERT_EQ(checked.size(), unchecked.size());
  for (std::size_t i = 0; i < checked.size(); ++i) {
    // Byte-identical, not just approximately equal.
    EXPECT_EQ(std::memcmp(&checked[i], &unchecked[i], sizeof(double)), 0)
        << "element " << i;
  }
}

TEST(MpiliteCheck, EnvVarTurnsRunIntoCheckedRun) {
  // EPI_MPILITE_CHECK=1 makes plain Runtime::run throw at finalize when a
  // violation was recorded — the zero-code-change lane used by ci.sh.
  ASSERT_EQ(setenv("EPI_MPILITE_CHECK", "1", 1), 0);
  EXPECT_THROW(
      Runtime::run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       comm.send<int>(1, 0, std::vector<int>{1});  // leaked
                     }
                   }),
      Error);
  // And a clean body runs to completion unchanged.
  EXPECT_NO_THROW(Runtime::run(2, [](Comm& comm) { comm.barrier(); }));
  ASSERT_EQ(unsetenv("EPI_MPILITE_CHECK"), 0);
}

TEST(MpiliteCheck, UserExceptionStillPropagatesUnderChecker) {
  EXPECT_THROW(Runtime::run_checked(
                   2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw Error("application failure");
                     comm.barrier();
                   },
                   fast_watchdog()),
               Error);
}

}  // namespace
}  // namespace epi::mpilite
