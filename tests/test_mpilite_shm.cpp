// Shared-memory backend tests: backend selection, thread-vs-shm byte
// identity of every communication pattern at 1/2/4/8 ranks, the
// randomized-interleaving FIFO stress (satellite of the cross-process
// correctness work), the CommChecker detecting seeded violations across
// process boundaries, 64-bit traffic accounting, back-to-back Runtime
// reuse, and child-state merging (metrics, flow edges, exceptions).
//
// Rank bodies assert by throwing (see test_mpilite.cpp): under the shm
// backend every rank above 0 is a forked process, where a gtest EXPECT_*
// would be invisible. Cross-rank observations travel through allgatherv
// and are stored by rank 0, which runs on the launching thread in both
// backends.
#include "mpilite/shm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mpilite/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "util/json.hpp"

namespace epi::mpilite {
namespace {

void require(bool condition, const std::string& what) {
  if (!condition) throw Error("rank assertion failed: " + what);
}

/// Pins EPI_MPILITE_BACKEND to `value` for one scope (nullptr = unset),
/// restoring the previous state on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(const char* value) {
    const char* current = std::getenv("EPI_MPILITE_BACKEND");
    if (current != nullptr) saved_ = current;
    had_value_ = current != nullptr;
    if (value != nullptr) {
      setenv("EPI_MPILITE_BACKEND", value, 1);
    } else {
      unsetenv("EPI_MPILITE_BACKEND");
    }
  }
  ~BackendGuard() {
    if (had_value_) {
      setenv("EPI_MPILITE_BACKEND", saved_.c_str(), 1);
    } else {
      unsetenv("EPI_MPILITE_BACKEND");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

void expect_bytes_equal(const std::vector<double>& a,
                        const std::vector<double>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  ASSERT_FALSE(a.empty()) << label << ": digest must not be vacuously empty";
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << label;
}

// ------------------------------------------------- digest rank bodies ---

/// Every collective plus point-to-point traffic, folded into a per-rank
/// digest whose every double must be byte-identical across backends.
std::vector<double> mixed_traffic_digest(Comm& comm) {
  std::vector<double> digest;
  const int n = comm.size();
  const int rank = comm.rank();

  digest.push_back(comm.allreduce(0.1 * (rank + 1), ReduceOp::kSum));
  digest.push_back(comm.allreduce(static_cast<double>(rank), ReduceOp::kMin));
  digest.push_back(comm.allreduce(static_cast<double>(rank), ReduceOp::kMax));
  digest.push_back(
      comm.allreduce(rank == n - 1 ? 1.0 : 0.0, ReduceOp::kLogicalOr));

  // Exact int64 sum beyond double precision.
  constexpr std::int64_t big = (std::int64_t{1} << 53) + 1;
  digest.push_back(static_cast<double>(
      comm.allreduce(big, ReduceOp::kSum) - std::int64_t{n} * big));

  std::vector<double> mine(static_cast<std::size_t>(rank % 3 + 1),
                           1.0 / (rank + 2));
  for (double v : comm.allgatherv(mine)) digest.push_back(v);

  std::vector<std::vector<double>> outbox(static_cast<std::size_t>(n));
  for (int dest = 0; dest < n; ++dest) {
    outbox[static_cast<std::size_t>(dest)] = {rank * 100.0 + dest,
                                              0.5 * rank};
  }
  for (const auto& slice : comm.alltoallv(outbox)) {
    for (double v : slice) digest.push_back(v);
  }

  for (int root = 0; root < n; ++root) {
    std::vector<double> value;
    if (rank == root) value = {3.25 * root, static_cast<double>(n)};
    for (double v : comm.broadcast(value, root)) digest.push_back(v);
  }

  comm.barrier();

  // Point-to-point ring pass (also covers empty payloads).
  if (n > 1) {
    const int next = (rank + 1) % n;
    const int prev = (rank + n - 1) % n;
    comm.send<double>(next, 3, std::vector<double>{rank + 0.125});
    comm.send<double>(next, 4, std::vector<double>{});
    digest.push_back(comm.recv<double>(prev, 3).at(0));
    require(comm.recv<double>(prev, 4).empty(), "empty ring payload");
  }
  digest.push_back(static_cast<double>(comm.bytes_sent()));
  return digest;
}

/// The randomized-interleaving FIFO stress: every rank sends a seeded,
/// shuffled schedule of messages; receivers recompute each sender's
/// schedule from the shared seed, drain their share in their own seeded
/// interleaving, and digest (source, tag, sequence, payload) of every
/// delivery. Per-(source, tag) FIFO order makes the digest a pure
/// function of the seed — byte-identical under thread and shm backends.
std::vector<double> fifo_stress_digest(Comm& comm, unsigned seed) {
  const int n = comm.size();
  const int rank = comm.rank();
  constexpr int kTags[] = {2, 5, 11};

  struct Message {
    int dest;
    int tag;
    std::vector<double> payload;
  };
  // Deterministic per (seed, source): both the sender and every receiver
  // can reconstruct the same shuffled schedule.
  const auto schedule_for = [&](int source) {
    std::mt19937 rng(seed * 7919u + static_cast<unsigned>(source));
    std::vector<Message> plan;
    for (int dest = 0; dest < n; ++dest) {
      if (dest == source) continue;  // self-sends are a separate diagnostic
      for (int tag : kTags) {
        const auto count = rng() % 4;  // 0..3 messages per route
        for (std::uint32_t i = 0; i < count; ++i) {
          std::vector<double> payload(rng() % 9);  // 0..8 doubles
          for (double& v : payload) {
            v = static_cast<double>(rng()) / 16.0;
          }
          plan.push_back({dest, tag, std::move(payload)});
        }
      }
    }
    std::shuffle(plan.begin(), plan.end(), rng);
    return plan;
  };

  for (const Message& m : schedule_for(rank)) {
    comm.send<double>(m.dest, m.tag, m.payload);
  }

  // What this rank must drain, in per-(source, tag) send order.
  std::map<std::pair<int, int>, std::deque<std::vector<double>>> expected;
  std::vector<std::pair<int, int>> pending;  // one entry per message
  for (int source = 0; source < n; ++source) {
    if (source == rank) continue;
    for (const Message& m : schedule_for(source)) {
      if (m.dest != rank) continue;
      expected[{source, m.tag}].push_back(m.payload);
      pending.emplace_back(source, m.tag);
    }
  }
  // The receive interleaving is itself randomized (differently from any
  // sender), exercising the shm stash demultiplexer.
  std::mt19937 recv_rng(seed * 104729u + 1000u + static_cast<unsigned>(rank));
  std::shuffle(pending.begin(), pending.end(), recv_rng);

  std::map<std::pair<int, int>, int> delivered;
  std::vector<double> digest;
  for (const auto& [source, tag] : pending) {
    const std::vector<double> got = comm.recv<double>(source, tag);
    auto& queue = expected.at({source, tag});
    require(!queue.empty(), "unexpected extra message");
    require(got == queue.front(), "FIFO payload mismatch");
    queue.pop_front();
    digest.push_back(static_cast<double>(source));
    digest.push_back(static_cast<double>(tag));
    digest.push_back(static_cast<double>(delivered[{source, tag}]++));
    for (double v : got) digest.push_back(v);
  }
  digest.push_back(comm.allreduce(static_cast<double>(pending.size()),
                                  ReduceOp::kSum));
  return digest;
}

/// Runs `body`'s digest on every rank and returns the rank-ordered
/// concatenation as observed by rank 0.
std::vector<double> run_gathered(
    int num_ranks, const std::function<std::vector<double>(Comm&)>& body) {
  std::vector<double> gathered;
  Runtime::run(num_ranks, [&](Comm& comm) {
    const auto all = comm.allgatherv(body(comm));
    if (comm.rank() == 0) gathered = all;
  });
  return gathered;
}

// ---------------------------------------------------- backend selection ---

TEST(MpiliteShm, BackendSelectionFollowsEnvironment) {
  const auto observed_backend = [] {
    BackendKind kind = BackendKind::kThread;
    Runtime::run(1, [&](Comm& comm) { kind = comm.backend(); });
    return kind;
  };
  {
    BackendGuard unset(nullptr);
    EXPECT_EQ(observed_backend(), BackendKind::kThread);
  }
  {
    BackendGuard thread("thread");
    EXPECT_EQ(observed_backend(), BackendKind::kThread);
  }
  {
    BackendGuard shm("shm");
    EXPECT_EQ(observed_backend(), BackendKind::kShm);
  }
}

TEST(MpiliteShm, BogusBackendValueThrowsNamingTheVariable) {
  BackendGuard bogus("sideways");
  try {
    Runtime::run(1, [](Comm&) {});
    FAIL() << "bogus backend value should throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("EPI_MPILITE_BACKEND"), std::string::npos) << what;
    EXPECT_NE(what.find("sideways"), std::string::npos) << what;
  }
}

// ------------------------------------------------- cross-backend identity ---

TEST(MpiliteShm, MixedTrafficByteIdenticalAcrossBackendsAt1248Ranks) {
  for (int ranks : {1, 2, 4, 8}) {
    std::vector<double> thread_digest, shm_digest;
    {
      BackendGuard thread("thread");
      thread_digest = run_gathered(ranks, mixed_traffic_digest);
    }
    {
      BackendGuard shm("shm");
      shm_digest = run_gathered(ranks, mixed_traffic_digest);
    }
    expect_bytes_equal(thread_digest, shm_digest,
                       ("mixed traffic at " + std::to_string(ranks) + " ranks")
                           .c_str());
  }
}

TEST(MpiliteShm, RandomizedFifoStressByteIdenticalAcrossBackends) {
  for (const unsigned seed : {1u, 42u}) {
    for (const int ranks : {2, 4, 8}) {
      const auto body = [seed](Comm& comm) {
        return fifo_stress_digest(comm, seed);
      };
      std::vector<double> thread_digest, shm_digest;
      {
        BackendGuard thread("thread");
        thread_digest = run_gathered(ranks, body);
      }
      {
        BackendGuard shm("shm");
        shm_digest = run_gathered(ranks, body);
      }
      expect_bytes_equal(thread_digest, shm_digest,
                         ("fifo stress seed " + std::to_string(seed) + " at " +
                          std::to_string(ranks) + " ranks")
                             .c_str());
    }
  }
}

TEST(MpiliteShm, FifoStressCleanUnderCheckerOnBothBackends) {
  // The checker-instrumented path must neither perturb the digest nor
  // produce reports — every randomized message is received.
  const auto body = [](Comm& comm) { return fifo_stress_digest(comm, 7u); };
  std::vector<double> digests[2];
  const char* backends[] = {"thread", "shm"};
  for (int b = 0; b < 2; ++b) {
    BackendGuard guard(backends[b]);
    const auto reports = Runtime::run_checked(4, [&](Comm& comm) {
      const auto all = comm.allgatherv(body(comm));
      if (comm.rank() == 0) digests[b] = all;
    });
    EXPECT_TRUE(reports.empty()) << backends[b] << ": "
                                 << format_reports(reports);
  }
  expect_bytes_equal(digests[0], digests[1], "checked fifo stress");
}

// ----------------------------------------------- checker across processes ---

TEST(MpiliteShm, CollectiveMismatchDetectedAcrossProcesses) {
  BackendGuard shm("shm");
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
    } else {
      comm.allreduce(1.0, ReduceOp::kSum);
    }
  });
  ASSERT_FALSE(reports.empty());
  bool mismatch_seen = false;
  for (const auto& report : reports) {
    if (report.kind != CheckKind::kCollectiveMismatch) continue;
    mismatch_seen = true;
    // The report must name the user-level collectives, not the
    // allgatherv transport allreduce rides on.
    EXPECT_TRUE(report.message.find("allreduce") != std::string::npos ||
                report.message.find("barrier") != std::string::npos)
        << report.message;
  }
  EXPECT_TRUE(mismatch_seen) << format_reports(reports);
}

TEST(MpiliteShm, DeadlockDetectedAcrossProcesses) {
  BackendGuard shm("shm");
  CheckOptions fast;
  fast.deadlock_timeout_s = 0.25;
  // Classic recv-recv cycle: rank 0 (the parent) and rank 1 (a forked
  // child) each wait on the other. The parent's watchdog must diagnose
  // the child's blocked state through the shared segment.
  const auto reports = Runtime::run_checked(
      2,
      [](Comm& comm) {
        comm.recv<int>(1 - comm.rank(), 0);
      },
      fast);
  bool deadlock_seen = false;
  for (const auto& report : reports) {
    if (report.kind != CheckKind::kDeadlock) continue;
    deadlock_seen = true;
    EXPECT_NE(report.message.find("recv"), std::string::npos)
        << report.message;
  }
  EXPECT_TRUE(deadlock_seen) << format_reports(reports);
}

TEST(MpiliteShm, MessageLeakDetectedFromForkedSender) {
  BackendGuard shm("shm");
  // Rank 1 — a forked process — sends a message nobody receives; its
  // send tally must ship back to the parent for the finalize-time leak
  // analysis.
  const auto reports = Runtime::run_checked(2, [](Comm& comm) {
    if (comm.rank() == 1) comm.send<int>(0, 6, std::vector<int>{9});
    comm.barrier();
  });
  ASSERT_EQ(reports.size(), 1u) << format_reports(reports);
  EXPECT_EQ(reports[0].kind, CheckKind::kMessageLeak);
  EXPECT_NE(reports[0].message.find("tag 6"), std::string::npos)
      << reports[0].message;
}

// --------------------------------------------------- error propagation ---

TEST(MpiliteShm, ChildExceptionMessageCrossesProcessBoundary) {
  BackendGuard shm("shm");
  try {
    Runtime::run(4, [](Comm& comm) {
      if (comm.rank() == 2) throw Error("boom from rank 2");
      comm.barrier();  // other ranks block; the abort must wake them
    });
    FAIL() << "child exception should propagate to the launcher";
  } catch (const Error& e) {
    // The primary error must win over the other ranks' secondary
    // AbortedErrors — including rank 0's, which sorts first.
    EXPECT_NE(std::string(e.what()).find("boom from rank 2"),
              std::string::npos)
        << e.what();
  }
}

// ----------------------------------------------------- runtime reuse ---

TEST(MpiliteShm, BackToBackRuntimesAreIndependentAndIdentical) {
  // Two full digest runs in one process, interleaving backends: no state
  // may leak from one Runtime group into the next (segments, stashes,
  // counters), so every repeat is byte-identical to its first run.
  const auto body = [](Comm& comm) {
    auto digest = mixed_traffic_digest(comm);
    const auto stress = fifo_stress_digest(comm, 13u);
    digest.insert(digest.end(), stress.begin(), stress.end());
    return digest;
  };
  std::vector<double> thread_digest, shm_digest;
  {
    BackendGuard thread("thread");
    thread_digest = run_gathered(4, body);
  }
  {
    BackendGuard shm("shm");
    shm_digest = run_gathered(4, body);
  }
  expect_bytes_equal(thread_digest, shm_digest, "first round");
  {
    BackendGuard shm("shm");
    expect_bytes_equal(run_gathered(4, body), shm_digest, "shm repeat");
  }
  {
    BackendGuard thread("thread");
    expect_bytes_equal(run_gathered(4, body), thread_digest,
                       "thread repeat");
  }
}

// ------------------------------------------------ 64-bit traffic sizes ---

TEST(MpiliteShm, FrameHeaderCarries64BitLengths) {
  // The ring frame header must not truncate sizes to 32 bits — a
  // population-scale alltoallv slice can exceed 4 GiB. Exercised on the
  // codec directly so the test does not need a real 4 GiB payload.
  using detail::ShmBackend;
  std::byte header[ShmBackend::kFrameHeaderSize];
  const std::uint64_t big_length = (std::uint64_t{1} << 32) + 12345u;
  const std::uint64_t tag = (std::uint64_t{1} << 29) + 7u;
  ShmBackend::encode_frame_header(big_length, tag, header);
  std::uint64_t length_out = 0;
  std::uint64_t tag_out = 0;
  ShmBackend::decode_frame_header(header, length_out, tag_out);
  EXPECT_EQ(length_out, big_length);
  EXPECT_EQ(tag_out, tag);
  // Little-endian on the wire: byte 4 carries the 2^32 bit.
  EXPECT_EQ(std::to_integer<unsigned>(header[4]), 1u);
  EXPECT_EQ(std::to_integer<unsigned>(header[0]), 12345u & 0xffu);

  // Round-trip at the extremes.
  ShmBackend::encode_frame_header(~std::uint64_t{0}, 0u, header);
  ShmBackend::decode_frame_header(header, length_out, tag_out);
  EXPECT_EQ(length_out, ~std::uint64_t{0});
  EXPECT_EQ(tag_out, 0u);
}

TEST(MpiliteShm, TrafficAccountingIs64BitEndToEnd) {
  // bytes_sent() must be 64-bit at the API boundary...
  static_assert(
      std::is_same_v<decltype(std::declval<const Comm&>().bytes_sent()),
                     std::uint64_t>);
  // ...and the per-rank-pair metrics counters must accumulate and merge
  // past 2^32 (the cross-process path ships child registries as blobs).
  const std::uint64_t big = (std::uint64_t{1} << 32) + 99u;
  obs::MetricsRegistry parent, child;
  parent.add("mpilite.bytes.000->001", big);
  child.add("mpilite.bytes.000->001", big);
  child.add("mpilite.msgs.000->001", 3);
  parent.merge_state(child.serialize_state());
  EXPECT_EQ(parent.counter("mpilite.bytes.000->001"), 2 * big);
  EXPECT_EQ(parent.counter("mpilite.msgs.000->001"), 3u);
}

// ------------------------------------------- observability across fork ---

TEST(MpiliteShm, ChildMetricsAndFlowEdgesMergeIntoParent) {
  // The same observed run under both backends: every counter, histogram,
  // and flow edge a forked child produces must merge into the parent's
  // registry/recorder such that the serialized output is byte-identical
  // to the thread backend's.
  const auto body = [](Comm& comm) {
    // Rank 1 is the forked process under shm; its sends must be visible
    // in the parent's registry and trace after the merge.
    if (comm.rank() == 1) {
      comm.send<int>(0, 7, std::vector<int>{1, 2, 3});
      comm.send<int>(0, 7, std::vector<int>{4});
    } else {
      require(comm.recv<int>(1, 7).size() == 3, "first payload size");
      require(comm.recv<int>(1, 7).size() == 1, "second payload size");
    }
    comm.allreduce(1.0, ReduceOp::kSum);
  };
  std::string metrics_text[2], trace_text[2];
  const char* backends[] = {"thread", "shm"};
  for (int b = 0; b < 2; ++b) {
    BackendGuard guard(backends[b]);
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace(true);
    ObsHooks hooks;
    hooks.metrics = &metrics;
    hooks.deterministic_timing = true;
    hooks.trace = &trace;
    Runtime::run(2, body, hooks);

    // The child's traffic reached the parent's registry: two user sends
    // plus the allreduce's accounted per-pair contribution.
    EXPECT_EQ(metrics.counter("mpilite.msgs.001->000"), 3u) << backends[b];
    // One top-level allreduce observation per rank — the forked child's
    // histogram entry merged into the parent's.
    EXPECT_EQ(metrics.histogram_count("mpilite.allreduce_s"), 2u)
        << backends[b];

    const Json doc = trace.to_json();
    const obs::TraceCheckResult result = obs::check_trace_json(doc);
    EXPECT_TRUE(result.ok) << backends[b];
    EXPECT_EQ(result.flows, 2u) << backends[b];
    metrics_text[b] = metrics.snapshot().dump();
    trace_text[b] = doc.dump();
  }
  EXPECT_EQ(metrics_text[0], metrics_text[1]);
  EXPECT_EQ(trace_text[0], trace_text[1]);
}

}  // namespace
}  // namespace epi::mpilite
