#include "network/contact_network.hpp"
#include "network/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace epi {
namespace {

ContactNetwork make_line_network(PersonId n) {
  // 0-1-2-...-(n-1) path with varied contexts.
  ContactNetworkBuilder builder(n);
  for (PersonId i = 0; i + 1 < n; ++i) {
    builder.add_contact(i, i + 1, 540, 60,
                        i % 2 == 0 ? ActivityType::kWork : ActivityType::kHome,
                        ActivityType::kShopping, 1.0f + static_cast<float>(i));
  }
  return std::move(builder).finalize();
}

TEST(ActivityType, NamesRoundTrip) {
  for (int i = 0; i < kActivityTypeCount; ++i) {
    const auto type = static_cast<ActivityType>(i);
    EXPECT_EQ(activity_from_name(activity_name(type)), type);
  }
  EXPECT_THROW(activity_from_name("gym"), ConfigError);
}

TEST(ContactNetwork, BuilderCreatesBothDirections) {
  ContactNetworkBuilder builder(3);
  builder.add_contact(0, 2, 100, 30, ActivityType::kWork,
                      ActivityType::kShopping);
  const ContactNetwork net = std::move(builder).finalize();
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.edge_count(), 2u);
  EXPECT_EQ(net.contact_count(), 1u);
  // Edge into 2 comes from 0 and carries 0's activity as source context.
  ASSERT_EQ(net.in_degree(2), 1u);
  const Contact& into2 = net.contact(net.in_begin(2));
  EXPECT_EQ(into2.source, 0u);
  EXPECT_EQ(into2.source_activity,
            static_cast<std::uint8_t>(ActivityType::kWork));
  EXPECT_EQ(into2.target_activity,
            static_cast<std::uint8_t>(ActivityType::kShopping));
  // Mirror edge into 0 swaps the contexts.
  const Contact& into0 = net.contact(net.in_begin(0));
  EXPECT_EQ(into0.source, 2u);
  EXPECT_EQ(into0.source_activity,
            static_cast<std::uint8_t>(ActivityType::kShopping));
  EXPECT_EQ(into0.target_activity,
            static_cast<std::uint8_t>(ActivityType::kWork));
}

TEST(ContactNetwork, RejectsInvalidContacts) {
  ContactNetworkBuilder builder(2);
  EXPECT_THROW(builder.add_contact(0, 0, 0, 10, ActivityType::kHome,
                                   ActivityType::kHome),
              Error);
  EXPECT_THROW(builder.add_contact(0, 5, 0, 10, ActivityType::kHome,
                                   ActivityType::kHome),
              Error);
}

TEST(ContactNetwork, CsrDegreesConsistent) {
  const ContactNetwork net = make_line_network(10);
  EXPECT_EQ(net.edge_count(), 18u);  // 9 undirected contacts
  EXPECT_EQ(net.in_degree(0), 1u);
  EXPECT_EQ(net.in_degree(5), 2u);
  std::uint64_t total = 0;
  for (PersonId v = 0; v < net.node_count(); ++v) total += net.in_degree(v);
  EXPECT_EQ(total, net.edge_count());
}

TEST(ContactNetwork, TargetOfInvertsCsr) {
  const ContactNetwork net = make_line_network(8);
  for (PersonId v = 0; v < net.node_count(); ++v) {
    for (EdgeIndex e = net.in_begin(v); e < net.in_end(v); ++e) {
      EXPECT_EQ(net.target_of(e), v);
    }
  }
}

TEST(ContactNetwork, ContactMinutes) {
  const ContactNetwork net = make_line_network(3);
  EXPECT_DOUBLE_EQ(net.contact_minutes(1), 120.0);  // two 60-minute edges
}

TEST(ContactNetwork, ContentHashStableAndSensitive) {
  const ContactNetwork a = make_line_network(6);
  const ContactNetwork b = make_line_network(6);
  const ContactNetwork c = make_line_network(7);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(ContactNetwork, CsvRoundTrip) {
  const ContactNetwork net = make_line_network(5);
  std::stringstream buffer;
  net.write_csv(buffer);
  const ContactNetwork restored = ContactNetwork::read_csv(buffer, 5);
  EXPECT_EQ(restored.edge_count(), net.edge_count());
  EXPECT_EQ(restored.content_hash(), net.content_hash());
}

TEST(ContactNetwork, BinaryRoundTrip) {
  const ContactNetwork net = make_line_network(12);
  const std::string path = "/tmp/episcale_test_net.bin";
  net.write_binary(path);
  const ContactNetwork restored = ContactNetwork::read_binary(path);
  EXPECT_EQ(restored.node_count(), net.node_count());
  EXPECT_EQ(restored.content_hash(), net.content_hash());
  std::filesystem::remove(path);
}

TEST(ContactNetwork, BinaryRejectsGarbage) {
  const std::string path = "/tmp/episcale_test_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a network";
  }
  EXPECT_THROW(ContactNetwork::read_binary(path), Error);
  std::filesystem::remove(path);
}

TEST(NetworkStats, CountsContextsAndDegrees) {
  ContactNetworkBuilder builder(4);
  builder.add_contact(0, 1, 0, 600, ActivityType::kHome, ActivityType::kHome);
  builder.add_contact(1, 2, 540, 240, ActivityType::kWork, ActivityType::kWork);
  const ContactNetwork net = std::move(builder).finalize();
  const NetworkStats stats = compute_stats(net);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.undirected_contacts, 2u);
  EXPECT_EQ(stats.isolated_nodes, 1u);  // node 3
  EXPECT_EQ(stats.max_degree, 2u);      // node 1
  EXPECT_EQ(stats.edges_by_context[static_cast<int>(ActivityType::kHome)], 2u);
  EXPECT_EQ(stats.edges_by_context[static_cast<int>(ActivityType::kWork)], 2u);
}

// ---------------------------------------------------------- partition ----

TEST(Partition, TilesNodesAndEdges) {
  const ContactNetwork net = make_line_network(100);
  const Partitioning parts = partition_network(net, 4);
  EXPECT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts.part(0).node_begin, 0u);
  EXPECT_EQ(parts.parts().back().node_end, 100u);
  EXPECT_EQ(parts.parts().back().edge_end, net.edge_count());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts.part(i).node_begin, parts.part(i - 1).node_end);
    EXPECT_EQ(parts.part(i).edge_begin, parts.part(i - 1).edge_end);
  }
}

TEST(Partition, AllInEdgesOfNodeStayTogether) {
  const ContactNetwork net = make_line_network(50);
  const Partitioning parts = partition_network(net, 7);
  for (PersonId v = 0; v < net.node_count(); ++v) {
    const std::size_t owner = parts.partition_of(v);
    EXPECT_GE(net.in_begin(v), parts.part(owner).edge_begin);
    EXPECT_LE(net.in_end(v), parts.part(owner).edge_end);
  }
}

TEST(Partition, BalancedWithinThreshold) {
  const ContactNetwork net = make_line_network(1000);
  const Partitioning parts = partition_network(net, 8);
  // Path graph has max in-degree 2; imbalance should be tiny.
  EXPECT_LT(parts.edge_imbalance(), 1.1);
}

TEST(Partition, SinglePartition) {
  const ContactNetwork net = make_line_network(10);
  const Partitioning parts = partition_network(net, 1);
  EXPECT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts.part(0).edge_count(), net.edge_count());
}

TEST(Partition, MorePartitionsThanNodesClamps) {
  const ContactNetwork net = make_line_network(3);
  const Partitioning parts = partition_network(net, 64);
  EXPECT_LE(parts.size(), 3u);
}

TEST(Partition, PartitionOfCoversAllNodes) {
  const ContactNetwork net = make_line_network(30);
  const Partitioning parts = partition_network(net, 5);
  for (PersonId v = 0; v < 30; ++v) {
    const std::size_t owner = parts.partition_of(v);
    EXPECT_GE(v, parts.part(owner).node_begin);
    EXPECT_LT(v, parts.part(owner).node_end);
  }
}

TEST(Partition, SaveLoadRoundTrip) {
  const ContactNetwork net = make_line_network(40);
  const Partitioning parts = partition_network(net, 3);
  const std::string path = "/tmp/episcale_test_partition.bin";
  parts.save(path);
  const Partitioning restored = Partitioning::load(path);
  ASSERT_EQ(restored.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(restored.part(i).node_begin, parts.part(i).node_begin);
    EXPECT_EQ(restored.part(i).edge_end, parts.part(i).edge_end);
  }
  std::filesystem::remove(path);
}

TEST(Partition, CacheHitSkipsRecomputation) {
  const ContactNetwork net = make_line_network(60);
  const std::string cache_dir = "/tmp/episcale_test_cache";
  std::filesystem::remove_all(cache_dir);
  bool hit = true;
  const Partitioning first = partition_with_cache(net, 4, 0, cache_dir, &hit);
  EXPECT_FALSE(hit);
  const Partitioning second = partition_with_cache(net, 4, 0, cache_dir, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.size(), first.size());
  // Different P -> different cache entry.
  const Partitioning third = partition_with_cache(net, 2, 0, cache_dir, &hit);
  EXPECT_FALSE(hit);
  std::filesystem::remove_all(cache_dir);
}

TEST(Partition, CacheKeyedByContent) {
  const ContactNetwork a = make_line_network(20);
  const ContactNetwork b = make_line_network(21);
  EXPECT_NE(partition_cache_filename(a, 4, 0),
            partition_cache_filename(b, 4, 0));
  EXPECT_NE(partition_cache_filename(a, 4, 0),
            partition_cache_filename(a, 5, 0));
  EXPECT_NE(partition_cache_filename(a, 4, 0),
            partition_cache_filename(a, 4, 9));
}

TEST(PartitionChunks, RoundTripPerPartition) {
  const ContactNetwork net = make_line_network(60);
  const Partitioning parts = partition_network(net, 4);
  const std::string dir = "/tmp/episcale_test_chunks";
  std::filesystem::remove_all(dir);
  EXPECT_FALSE(partition_chunks_cached(net, parts, dir));
  const auto paths = write_partition_chunks(net, parts, dir);
  ASSERT_EQ(paths.size(), parts.size());
  EXPECT_TRUE(partition_chunks_cached(net, parts, dir));
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto contacts = read_partition_chunk(paths[i]);
    EXPECT_EQ(contacts.size(), parts.part(i).edge_count());
    total += contacts.size();
    // Chunk contents match the network's edge range exactly.
    for (std::size_t j = 0; j < contacts.size(); ++j) {
      EXPECT_EQ(contacts[j].source,
                net.contact(parts.part(i).edge_begin + j).source);
    }
  }
  EXPECT_EQ(total, net.edge_count());
  std::filesystem::remove_all(dir);
}

TEST(PartitionChunks, RejectsGarbageFile) {
  const std::string path = "/tmp/episcale_test_badchunk.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "nope";
  }
  EXPECT_THROW(read_partition_chunk(path), Error);
  std::filesystem::remove(path);
}

// Property sweep over partition counts: tiling + in-edge locality hold.
class PartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionSweep, InvariantsHold) {
  const ContactNetwork net = make_line_network(123);
  const Partitioning parts = partition_network(net, GetParam());
  std::uint64_t edge_total = 0;
  for (const Partition& p : parts.parts()) {
    EXPECT_LE(p.node_begin, p.node_end);
    edge_total += p.edge_count();
  }
  EXPECT_EQ(edge_total, net.edge_count());
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 40, 123));

// --- Out-edge transpose (the frontier kernel's push index) ---------------

TEST(ContactNetwork, OutEdgeTransposeConsistent) {
  const ContactNetwork net = make_line_network(17);
  std::uint64_t total = 0;
  for (PersonId u = 0; u < net.node_count(); ++u) {
    const auto edges = net.out_edges_of(u);
    EXPECT_EQ(edges.size(), net.out_degree(u));
    total += edges.size();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      // Every listed edge really is sourced at u...
      EXPECT_EQ(net.contact(edges[i]).source, u);
      // ...and buckets are ascending (the frontier sort relies on it).
      if (i > 0) {
        EXPECT_LT(edges[i - 1], edges[i]);
      }
    }
  }
  EXPECT_EQ(total, net.edge_count());
  // Inverse direction: every edge appears in its source's bucket.
  for (EdgeIndex e = 0; e < net.edge_count(); ++e) {
    const auto edges = net.out_edges_of(net.contact(e).source);
    EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(), e));
  }
}

TEST(ContactNetwork, OutEdgeTransposeSurvivesBinaryRoundTrip) {
  const ContactNetwork net = make_line_network(12);
  const std::string path = "/tmp/episcale_test_outcsr.bin";
  net.write_binary(path);
  const ContactNetwork loaded = ContactNetwork::read_binary(path);
  for (PersonId u = 0; u < net.node_count(); ++u) {
    const auto a = net.out_edges_of(u);
    const auto b = loaded.out_edges_of(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::filesystem::remove(path);
}

// --- Ghost sources (the halo each rank subscribes to) --------------------

TEST(Partition, GhostSourcesAreExactlyRemoteInEdgeSources) {
  const ContactNetwork net = make_line_network(40);
  const Partitioning parts = partition_network(net, 5);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Partition& part = parts.part(i);
    // Brute-force reference: remote sources over this part's edge range.
    std::set<PersonId> expected;
    for (EdgeIndex e = part.edge_begin; e < part.edge_end; ++e) {
      const PersonId s = net.contact(e).source;
      if (s < part.node_begin || s >= part.node_end) expected.insert(s);
    }
    const auto ghosts = compute_ghost_sources(net, parts, i);
    EXPECT_TRUE(std::is_sorted(ghosts.begin(), ghosts.end()));
    EXPECT_EQ(std::set<PersonId>(ghosts.begin(), ghosts.end()), expected);
    EXPECT_EQ(ghosts.size(), expected.size());  // no duplicates
  }
}

TEST(Partition, GhostSourcesEmptyForSinglePartition) {
  const ContactNetwork net = make_line_network(10);
  const Partitioning parts = partition_network(net, 1);
  EXPECT_TRUE(compute_ghost_sources(net, parts, 0).empty());
}

}  // namespace
}  // namespace epi
