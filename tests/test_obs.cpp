// Observability layer tests: trace recorder structure, metrics bucketing,
// dual-clock determinism, the no-perturbation guarantee (tracing on must
// not change the WorkflowReport), golden-file validation of an emitted
// Chrome trace, and the logging satellite (EPI_LOG_LEVEL parser + sink).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "epitrace/epitrace.hpp"
#include "exec/executor.hpp"
#include "mpilite/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "resilience/fault_injector.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "workflow/nightly.hpp"

namespace epi {
namespace {

using obs::MetricsRegistry;
using obs::TraceArgs;
using obs::TraceRecorder;

std::string joined(const std::vector<std::string>& errors) {
  std::string out;
  for (const auto& error : errors) out += error + "\n";
  return out;
}

// Counts non-metadata events in `doc` whose "cat" equals `category`.
std::size_t count_category(const Json& doc, const std::string& category) {
  std::size_t n = 0;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.contains("cat") && event.at("cat").as_string() == category) ++n;
  }
  return n;
}

// ----------------------------------------------------- trace recorder ----

TEST(TraceRecorder, NestedSpansExportAsValidChromeTrace) {
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("remote");
  trace.thread_name(pid, 0, "workflow");
  trace.begin(pid, 0, "outer", "phase", 0.0);
  trace.begin(pid, 0, "inner", "phase", 0.5);
  trace.end(pid, 0, 1.0);
  trace.end(pid, 0, 2.0);
  trace.complete(pid, 1, "task 7", "job", 0.25, 0.75);
  trace.instant(pid, 0, "milestone", "config-gen", 1.5);
  trace.counter(pid, "slurm.nodes", 1.0, TraceArgs{{"busy", Json(3.0)}});

  const obs::TraceCheckResult result = obs::check_trace_json(trace.to_json());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.spans, 3u);  // two B/E pairs + one X
  EXPECT_EQ(result.instants, 1u);
  EXPECT_EQ(result.counters, 1u);
  EXPECT_EQ(result.processes, 1u);
  EXPECT_EQ(trace.event_count(), 7u);
}

TEST(TraceRecorder, UnmatchedSpansFailValidation) {
  TraceRecorder stray_end(true);
  const std::uint32_t pid = stray_end.process("p");
  stray_end.end(pid, 0, 1.0);
  EXPECT_FALSE(obs::check_trace_json(stray_end.to_json()).ok);

  TraceRecorder left_open(true);
  const std::uint32_t pid2 = left_open.process("p");
  left_open.begin(pid2, 0, "never closed", "phase", 0.0);
  EXPECT_FALSE(obs::check_trace_json(left_open.to_json()).ok);
}

TEST(TraceRecorder, OutOfOrderEmissionIsSortedMonotone) {
  // Job spans are emitted at completion time, so raw emission order is not
  // timestamp order; the exporter must sort.
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("remote");
  trace.complete(pid, 1, "late", "job", 5.0, 1.0);
  trace.complete(pid, 1, "early", "job", 1.0, 1.0);

  const Json doc = trace.to_json();
  const obs::TraceCheckResult result = obs::check_trace_json(doc);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  std::vector<std::string> names;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "X") names.push_back(event.at("name").as_string());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"early", "late"}));
}

TEST(TraceRecorder, DualClockIsZeroedUnderDeterministicTiming) {
  TraceRecorder det(true);
  EXPECT_EQ(det.wall_seconds(), 0.0);
  det.instant(det.process("p"), 0, "x", "c", 0.0);
  const Json doc = det.to_json();
  bool saw_instant = false;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "i") continue;
    saw_instant = true;
    EXPECT_EQ(event.at("args").at("wall_s").as_double(), 0.0);
  }
  EXPECT_TRUE(saw_instant);

  const TraceRecorder live(false);
  EXPECT_GE(live.wall_seconds(), 0.0);
}

// -------------------------------------------------------- flow events ----

TEST(TraceFlow, ChainsExportAndValidate) {
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("p");
  trace.flow_start(pid, 0, "send", "mpilite", 0.0, "msg:0->1");
  trace.flow_step(pid, 1, "hop", "mpilite", 0.5, "msg:0->1");
  trace.flow_end(pid, 1, "recv", "mpilite", 1.0, "msg:0->1");

  const Json doc = trace.to_json();
  const obs::TraceCheckResult result = obs::check_trace_json(doc);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 1u);
  for (const Json& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(event.at("id").as_string(), "msg:0->1");
    if (ph == "f") EXPECT_EQ(event.at("bp").as_string(), "e");
  }
}

TEST(TraceFlow, ValidationCatchesMisuse) {
  // Dangling start: the chain never ends.
  TraceRecorder dangling(true);
  const std::uint32_t p1 = dangling.process("p");
  dangling.flow_start(p1, 0, "send", "c", 0.0, "x");
  EXPECT_FALSE(obs::check_trace_json(dangling.to_json()).ok);

  // End without a start.
  TraceRecorder orphan(true);
  const std::uint32_t p2 = orphan.process("p");
  orphan.flow_end(p2, 0, "recv", "c", 1.0, "y");
  EXPECT_FALSE(obs::check_trace_json(orphan.to_json()).ok);

  // Time running backwards along a chain (a cyclic happens-before edge).
  TraceRecorder backwards(true);
  const std::uint32_t p3 = backwards.process("p");
  backwards.flow_start(p3, 0, "send", "c", 2.0, "z");
  backwards.flow_end(p3, 1, "recv", "c", 1.0, "z");
  EXPECT_FALSE(obs::check_trace_json(backwards.to_json()).ok);

  // Closing a chain frees its id for reuse.
  TraceRecorder reuse(true);
  const std::uint32_t p4 = reuse.process("p");
  reuse.flow_start(p4, 0, "send", "c", 0.0, "r");
  reuse.flow_end(p4, 1, "recv", "c", 1.0, "r");
  reuse.flow_start(p4, 0, "send", "c", 2.0, "r");
  reuse.flow_end(p4, 1, "recv", "c", 3.0, "r");
  const obs::TraceCheckResult result = obs::check_trace_json(reuse.to_json());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 2u);
}

// ---------------------------------------------------- metrics registry ----

TEST(MetricsRegistry, CountersGaugesAndHighWater) {
  MetricsRegistry metrics;
  metrics.add("c");
  metrics.add("c", 4);
  EXPECT_EQ(metrics.counter("c"), 5u);
  EXPECT_EQ(metrics.counter("missing"), 0u);

  metrics.set("g", 1.5);
  metrics.set("g", 0.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("g"), 0.5);
  metrics.set_max("peak", 2.0);
  metrics.set_max("peak", 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("peak"), 2.0);
}

TEST(MetricsRegistry, HistogramBucketsByUpperBound) {
  MetricsRegistry metrics;
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  metrics.observe("h", 0.5, bounds);   // <= 1.0
  metrics.observe("h", 1.0, bounds);   // on the bound: still <= 1.0
  metrics.observe("h", 3.0, bounds);   // <= 4.0
  metrics.observe("h", 100.0, bounds); // overflow
  EXPECT_EQ(metrics.histogram_count("h"), 4u);

  const Json snapshot = metrics.snapshot();
  const obs::MetricsCheckResult result = obs::check_metrics_json(snapshot);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.histograms, 1u);

  const JsonArray& buckets =
      snapshot.at("histograms").at("h").at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(buckets[0].at("count").as_double(), 2.0);
  EXPECT_EQ(buckets[1].at("count").as_double(), 0.0);
  EXPECT_EQ(buckets[2].at("count").as_double(), 1.0);
  EXPECT_EQ(buckets[3].at("count").as_double(), 1.0);
  EXPECT_EQ(buckets[3].at("le").as_string(), "+Inf");
  EXPECT_DOUBLE_EQ(snapshot.at("histograms").at("h").at("sum").as_double(),
                   104.5);
}

TEST(MetricsRegistry, DefaultBoundsKickInWithoutExplicitOnes) {
  MetricsRegistry metrics;
  metrics.observe("latency_s", 0.01);
  metrics.observe("latency_s", 2.5);
  EXPECT_EQ(metrics.histogram_count("latency_s"), 2u);
  EXPECT_TRUE(obs::check_metrics_json(metrics.snapshot()).ok);
}

TEST(MetricsRegistry, HistogramTailsAndPercentiles) {
  MetricsRegistry metrics;
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  metrics.observe("h", 0.5, bounds);  // underflow (below the first bound)
  metrics.observe("h", 1.5, bounds);
  metrics.observe("h", 3.0, bounds);
  metrics.observe("h", 9.0, bounds);  // overflow (+Inf bucket)

  const Json snapshot = metrics.snapshot();
  EXPECT_TRUE(obs::check_metrics_json(snapshot).ok);
  const Json& h = snapshot.at("histograms").at("h");
  EXPECT_EQ(h.at("underflow").as_double(), 1.0);
  EXPECT_EQ(h.at("overflow").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("min").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(h.at("max").as_double(), 9.0);
  // Quantile estimate: the upper bound of the bucket holding the rank,
  // clamped to the observed max (so the +Inf bucket reports finitely).
  EXPECT_DOUBLE_EQ(h.at("p50").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(h.at("p95").as_double(), 9.0);
  EXPECT_DOUBLE_EQ(h.at("p99").as_double(), 9.0);

  // Single observation: every percentile is the exact observed value.
  metrics.observe("one", 5.0, bounds);
  const Json again = metrics.snapshot();
  const Json& one = again.at("histograms").at("one");
  EXPECT_DOUBLE_EQ(one.at("p50").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(one.at("p99").as_double(), 5.0);
}

// ------------------------------------------------ nightly integration ----

NightlyConfig small_nightly_config() {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 2;
  config.sample_regions = {"WY", "VT"};
  config.executed_days = 20;
  config.deterministic_timing = true;
  return config;
}

WorkflowDesign small_design() {
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT", "MD"};
  return design;
}

TEST(ObsNightly, TracingDoesNotPerturbTheWorkflowReport) {
  const WorkflowDesign design = small_design();
  NightlyWorkflow plain(small_nightly_config());
  const WorkflowReport untraced = plain.run(design);

  obs::SessionOptions options;
  options.dir = "/tmp/episcale_test_obs_perturb";
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.trace = &session;
  NightlyWorkflow traced_engine(config);
  const WorkflowReport traced = traced_engine.run(design);

  EXPECT_EQ(untraced, traced);
  EXPECT_GT(session.trace().event_count(), 0u);
}

TEST(ObsNightly, TwoTracedRunsAreByteIdentical) {
  auto run_once = [] {
    obs::SessionOptions options;
    options.deterministic_timing = true;
    obs::Session session(std::move(options));
    NightlyConfig config = small_nightly_config();
    config.trace = &session;
    NightlyWorkflow engine(config);
    engine.run(small_design());
    return std::make_pair(session.trace().to_json().dump(),
                          session.metrics().snapshot().dump());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ObsNightly, GoldenTraceFileValidatesAndCoversEveryLayer) {
  const std::string dir = "/tmp/episcale_test_obs_golden";
  std::filesystem::remove_all(dir);

  obs::SessionOptions options;
  options.dir = dir;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.trace = &session;
  NightlyWorkflow engine(config);
  const WorkflowReport report = engine.run(small_design());
  session.write();

  const obs::TraceCheckResult result =
      obs::check_trace_file(session.trace_path());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.processes, 4u);  // home, remote, wan, exec (farm lanes)

  const Json doc = read_json_file(session.trace_path());
  // One 'X' span per PhaseRecord in the report timeline.
  EXPECT_EQ(count_category(doc, "phase"), report.timeline.size());
  // Per-job spans from the DES, per-file WAN spans, per-region instants.
  EXPECT_GT(count_category(doc, "job"), 0u);
  EXPECT_GT(count_category(doc, "wan"), 0u);
  EXPECT_GT(count_category(doc, "config-gen"), 0u);
  EXPECT_GT(count_category(doc, "db-snapshot"), 0u);
  EXPECT_GT(count_category(doc, "execute"), 0u);
  // Farm task spans from the exec pool (sampled simulations).
  EXPECT_GT(count_category(doc, "exec"), 0u);

  const obs::MetricsCheckResult metrics_result =
      obs::check_metrics_file(session.metrics_path());
  EXPECT_TRUE(metrics_result.ok) << joined(metrics_result.errors);
  EXPECT_GT(metrics_result.counters, 0u);
  EXPECT_GT(session.metrics().counter("nightly.runs"), 0u);
  EXPECT_GT(session.metrics().counter("slurm.jobs_completed"), 0u);
  EXPECT_GT(session.metrics().counter("wan.transfers"), 0u);
  EXPECT_GT(session.metrics().counter("persondb.servers_started"), 0u);

  std::filesystem::remove_all(dir);
}

TEST(ObsNightly, FlowEdgesTrackTheFarmAndTurnOffCleanly) {
  auto run_with_flow = [](bool flow) {
    obs::SessionOptions options;
    options.deterministic_timing = true;
    options.flow = flow;
    obs::Session session(std::move(options));
    NightlyConfig config = small_nightly_config();
    config.trace = &session;
    NightlyWorkflow engine(config);
    const WorkflowReport report = engine.run(small_design());
    return std::make_pair(report,
                          obs::check_trace_json(session.trace().to_json()));
  };
  const auto on = run_with_flow(true);
  const auto off = run_with_flow(false);
  EXPECT_TRUE(on.second.ok) << joined(on.second.errors);
  EXPECT_TRUE(off.second.ok) << joined(off.second.errors);
  EXPECT_GT(on.second.flows, 0u);   // the farm's submit->start->finish edges
  EXPECT_EQ(off.second.flows, 0u);  // EPI_TRACE_FLOW=0 removes them all
  EXPECT_EQ(on.first, off.first);   // without touching the report
}

TEST(ObsNightly, FaultInstantsAppearWhenInjectorEnabled) {
  obs::SessionOptions options;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.faults.enabled = true;
  config.faults.seed = 777;
  config.faults.node_mtbf_hours = 30.0 * 24.0;
  config.faults.node_repair_hours = 2.0;
  config.faults.wan_degraded_prob = 0.3;
  config.faults.db_drop_prob = 0.5;
  config.checkpoint.interval_ticks = 60;
  config.trace = &session;
  NightlyWorkflow engine(config);
  engine.run(small_design());

  const Json doc = session.trace().to_json();
  EXPECT_GT(count_category(doc, "fault"), 0u);
  EXPECT_TRUE(obs::check_trace_json(doc).ok);
}

TEST(ObsSession, FromEnvFollowsEpiTrace) {
  unsetenv("EPI_TRACE");
  EXPECT_EQ(obs::Session::from_env(), nullptr);
  setenv("EPI_TRACE", "/tmp/episcale_test_obs_env", 1);
  const std::unique_ptr<obs::Session> session = obs::Session::from_env(true);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->dir(), "/tmp/episcale_test_obs_env");
  EXPECT_TRUE(session->trace().deterministic_timing());
  unsetenv("EPI_TRACE");
  std::filesystem::remove_all("/tmp/episcale_test_obs_env");
}

TEST(ObsSession, FlowFollowsEpiTraceFlow) {
  setenv("EPI_TRACE", "/tmp/episcale_test_obs_env_flow", 1);
  // Default on when the variable is unset...
  unsetenv("EPI_TRACE_FLOW");
  EXPECT_TRUE(obs::Session::from_env(true)->flow());
  // ...and for any value other than the literal "0".
  setenv("EPI_TRACE_FLOW", "1", 1);
  EXPECT_TRUE(obs::Session::from_env(true)->flow());
  setenv("EPI_TRACE_FLOW", "0", 1);
  EXPECT_FALSE(obs::Session::from_env(true)->flow());
  unsetenv("EPI_TRACE_FLOW");
  unsetenv("EPI_TRACE");
  std::filesystem::remove_all("/tmp/episcale_test_obs_env_flow");
}

TEST(ObsSession, CreatesMissingOutputDirectoryEagerly) {
  const std::string root = "/tmp/episcale_test_obs_mkdir";
  std::filesystem::remove_all(root);
  obs::SessionOptions options;
  options.dir = root + "/nested/deep";
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  // Created at construction, not first write: a bad path fails the run
  // up front rather than after hours of simulation.
  EXPECT_TRUE(std::filesystem::is_directory(root + "/nested/deep"));
  session.write();
  EXPECT_TRUE(std::filesystem::exists(session.trace_path()));
  std::filesystem::remove_all(root);
}

TEST(ObsSession, UnusableOutputDirectoryFailsFast) {
  const std::string blocker = "/tmp/episcale_test_obs_blocker";
  std::filesystem::remove_all(blocker);
  std::ofstream(blocker) << "a plain file where the trace dir should go";
  obs::SessionOptions options;
  options.dir = blocker;  // collides with the file
  EXPECT_THROW(obs::Session{std::move(options)}, Error);
  std::filesystem::remove_all(blocker);
}

// ------------------------------------------------------ mpilite hooks ----

TEST(ObsMpilite, HooksCountMessagesAndCollectives) {
  MetricsRegistry metrics;
  mpilite::ObsHooks hooks;
  hooks.metrics = &metrics;
  hooks.deterministic_timing = true;
  mpilite::Runtime::run(
      2,
      [](mpilite::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send<int>(1, 3, std::vector<int>{1, 2, 3});
        } else {
          const auto received = comm.recv<int>(0, 3);
          EXPECT_EQ(received.size(), 3u);
        }
        comm.allreduce(1.0, mpilite::ReduceOp::kSum);
        comm.barrier();
      },
      hooks);

  EXPECT_GT(metrics.counter("mpilite.msgs.000->001"), 0u);
  EXPECT_GT(metrics.counter("mpilite.bytes.000->001"), 0u);
  // One top-level observation per rank; nested internal collectives must
  // not double-report.
  EXPECT_EQ(metrics.histogram_count("mpilite.allreduce_s"), 2u);
  EXPECT_EQ(metrics.histogram_count("mpilite.barrier_s"), 2u);
  // Deterministic timing: every observed duration is exactly zero.
  const Json snapshot = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at("histograms")
                       .at("mpilite.allreduce_s")
                       .at("sum")
                       .as_double(),
                   0.0);
}

TEST(ObsMpilite, NullHooksLeaveNoFootprint) {
  mpilite::Runtime::run(2, [](mpilite::Comm& comm) { comm.barrier(); },
                        mpilite::ObsHooks{});
  // Nothing to assert beyond "it ran": the null path must not crash.
  SUCCEED();
}

TEST(ObsMpilite, FlowEdgesPairEverySendWithItsRecv) {
  TraceRecorder trace(true);
  mpilite::ObsHooks hooks;
  hooks.deterministic_timing = true;
  hooks.trace = &trace;
  mpilite::Runtime::run(
      3,
      [](mpilite::Comm& comm) {
        if (comm.rank() == 0) {
          // Two messages on the same (src, dst, tag) route: the sequence
          // number must keep their edges apart.
          comm.send<int>(1, 7, std::vector<int>{1});
          comm.send<int>(1, 7, std::vector<int>{2, 2});
          comm.send<int>(2, 9, std::vector<int>{3});
        } else if (comm.rank() == 1) {
          comm.recv<int>(0, 7);
          comm.recv<int>(0, 7);
        } else {
          comm.recv<int>(0, 9);
        }
        comm.barrier();  // collectives contribute no point-to-point edges
      },
      hooks);

  const Json doc = trace.to_json();
  const obs::TraceCheckResult result = obs::check_trace_json(doc);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 3u);

  std::vector<std::string> starts, ends;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "s") starts.push_back(event.at("id").as_string());
    if (ph == "f") ends.push_back(event.at("id").as_string());
  }
  const std::vector<std::string> expected{"msg:0->1:t7:#0", "msg:0->1:t7:#1",
                                          "msg:0->2:t9:#0"};
  EXPECT_EQ(starts, expected);  // every send edge...
  EXPECT_EQ(ends, expected);    // ...reaches a matching recv
}

TEST(ObsMpilite, UnreceivedMessagesLeaveNoDanglingEdges) {
  TraceRecorder trace(true);
  trace.instant(trace.process("p"), 0, "run", "marker", 0.0);
  mpilite::ObsHooks hooks;
  hooks.deterministic_timing = true;
  hooks.trace = &trace;
  mpilite::Runtime::run(
      2,
      [](mpilite::Comm& comm) {
        if (comm.rank() == 0) comm.send<int>(1, 5, std::vector<int>{1});
        // Rank 1 exits without receiving: the message stays in the mailbox.
      },
      hooks);
  const obs::TraceCheckResult result = obs::check_trace_json(trace.to_json());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 0u);
}

// ------------------------------------------------------- exec flows ----

TEST(ObsExec, TaskChainsAreWellFormedAcrossCalls) {
  TraceRecorder trace(true);
  exec::ExecConfig config;
  config.jobs = 2;
  config.label = "unit";
  config.obs.trace = &trace;
  config.obs.deterministic_timing = true;
  const auto squares = exec::parallel_index_map(
      5, [](std::size_t i) { return i * i; }, config);
  EXPECT_EQ(squares.size(), 5u);
  // A second call in the same recorder: chain ids must not collide with
  // the first call's (the call-sequence discriminator).
  exec::parallel_index_map(3, [](std::size_t i) { return i + 1; }, config);

  const obs::TraceCheckResult result = obs::check_trace_json(trace.to_json());
  // ok means every submit->start->finish chain is closed, started once,
  // and time-ordered — i.e. the task graph the flows encode is acyclic.
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 8u);
}

TEST(ObsExec, FlowToggleSuppressesChains) {
  TraceRecorder trace(true);
  exec::ExecConfig config;
  config.jobs = 2;
  config.obs.trace = &trace;
  config.obs.deterministic_timing = true;
  config.obs.flow = false;
  exec::parallel_index_map(4, [](std::size_t i) { return i; }, config);
  const obs::TraceCheckResult result = obs::check_trace_json(trace.to_json());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.flows, 0u);
  EXPECT_EQ(result.spans, 4u);  // the task spans themselves remain
}

// ------------------------------------------------- service telemetry ----

using service::dump_request;
using service::RequestKind;
using service::ScenarioRequest;
using service::ScenarioService;
using service::ServiceConfig;
using service::ServiceOutcome;

ScenarioRequest obs_service_request(const std::string& id) {
  ScenarioRequest request;
  request.id = id;
  request.kind = RequestKind::kCalibration;
  request.region = "VT";
  request.scale_denominator = 400.0;
  request.prior_configs = 8;
  request.posterior_configs = 4;
  request.calibration_days = 20;
  request.horizon_days = 8;
  request.prediction_runs = 2;
  request.mcmc_samples = 30;
  request.mcmc_burn_in = 10;
  return request;
}

TEST(ObsService, RequestSpansFlowsAndCacheCountersAppear) {
  obs::SessionOptions options;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 2;
  config.trace = &session;
  ScenarioService service(config);
  const std::string log = dump_request(obs_service_request("cal-1")) + "\n";
  service.replay_log(log);   // cold: computes the unit
  service.replay_log(log);   // warm: served from cache

  const Json doc = session.trace().to_json();
  const obs::TraceCheckResult result = obs::check_trace_json(doc);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  // parse + plan + execute + schedule per replay wave.
  EXPECT_EQ(count_category(doc, "service-phase"), 8u);
  // One request span per request per wave.
  EXPECT_EQ(count_category(doc, "service-request"), 2u);
  // One request->work edge per request (cold lands on a worker lane,
  // warm on the cache), well-formed either way.
  EXPECT_GE(result.flows, 2u);

  EXPECT_GT(session.metrics().counter("service.requests"), 0u);
  EXPECT_GT(session.metrics().counter("service.cache_misses"), 0u);
  EXPECT_GT(session.metrics().counter("service.cache_hits"), 0u);
}

TEST(ObsService, TracingDoesNotPerturbResponses) {
  const std::string log = dump_request(obs_service_request("cal-1")) + "\n";
  ServiceConfig plain;
  plain.jobs = 1;
  plain.logical_workers = 2;
  ScenarioService untraced(plain);
  const ServiceOutcome base = untraced.replay_log(log);

  obs::SessionOptions options;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  ServiceConfig traced_config = plain;
  traced_config.trace = &session;
  ScenarioService traced(traced_config);
  const ServiceOutcome outcome = traced.replay_log(log);
  EXPECT_EQ(outcome.responses, base.responses);
}

// --------------------------------------------------- epitrace library ----

TEST(Epitrace, CriticalPathOnSyntheticTraceHasKnownAnswer) {
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("p");
  trace.complete(pid, 0, "window", "phase", 0.0, 10.0);
  trace.complete(pid, 1, "a", "job", 0.0, 3.0);   // ends 3
  trace.complete(pid, 2, "b", "job", 4.0, 4.0);   // ends 8; chains after a
  trace.complete(pid, 3, "c", "job", 1.0, 5.0);   // overlaps both
  trace.complete(pid, 1, "a.inner", "job", 1.0, 1.0);  // nested inside a

  const epitrace::TraceModel model = epitrace::load_trace(trace.to_json());
  const std::vector<epitrace::PhasePath> paths =
      epitrace::critical_paths(model);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].name, "window");
  EXPECT_DOUBLE_EQ(paths[0].duration_hours, 10.0);
  // a (3 h) + b (4 h) = 7 h beats c (5 h) and c + nothing.
  EXPECT_DOUBLE_EQ(paths[0].total_hours, 7.0);
  ASSERT_EQ(paths[0].spans.size(), 2u);
  EXPECT_EQ(paths[0].spans[0].name, "a");
  EXPECT_EQ(paths[0].spans[1].name, "b");
  // Self-time subtracts the hour a.inner occupied a's lane.
  EXPECT_DOUBLE_EQ(paths[0].spans[0].self_hours, 2.0);
  EXPECT_DOUBLE_EQ(paths[0].spans[1].self_hours, 4.0);

  // The summary's own invariants hold on the same input.
  const Json summary = epitrace::summarize(model, Json(JsonObject{}));
  EXPECT_TRUE(summary.at("self_checks_ok").as_bool());
}

TEST(Epitrace, LaneBusyUsesIntervalUnionAndImbalanceRatio) {
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("p");
  trace.complete(pid, 0, "outer", "job", 0.0, 4.0);
  trace.complete(pid, 0, "nested", "job", 1.0, 2.0);  // inside outer
  trace.complete(pid, 1, "other", "job", 0.0, 2.0);

  const epitrace::TraceModel model = epitrace::load_trace(trace.to_json());
  const std::vector<epitrace::LaneBusy> lanes = epitrace::lane_busy(model);
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_DOUBLE_EQ(lanes[0].busy_hours, 4.0);  // union, not 6.0
  EXPECT_DOUBLE_EQ(lanes[1].busy_hours, 2.0);
  const std::vector<epitrace::Imbalance> ratios = epitrace::imbalance(model);
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_DOUBLE_EQ(ratios[0].max_busy_hours, 4.0);
  EXPECT_DOUBLE_EQ(ratios[0].mean_busy_hours, 3.0);
  EXPECT_DOUBLE_EQ(ratios[0].ratio, 4.0 / 3.0);
}

TEST(Epitrace, BenchDiffGateFlagsRegressionsAndHonorsTolerances) {
  namespace fs = std::filesystem;
  const std::string root = "/tmp/episcale_test_epitrace_bench";
  fs::remove_all(root);
  const std::string base = root + "/base";
  const std::string cand = root + "/cand";
  fs::create_directories(base);
  fs::create_directories(cand);

  auto write_bench = [](const std::string& dir, double x, double days) {
    JsonObject metrics;
    metrics["x"] = x;
    metrics["days"] = days;
    JsonObject bench;
    bench["bench"] = std::string("demo");
    bench["metrics"] = Json(std::move(metrics));
    write_json_file(dir + "/BENCH_demo.json", Json(std::move(bench)));
  };
  write_bench(base, 100.0, 24.0);

  // Within the default 5% tolerance: clean.
  write_bench(cand, 104.0, 24.0);
  EXPECT_TRUE(epitrace::bench_diff(base, cand).ok);

  // An 11% drift is flagged.
  write_bench(cand, 111.0, 24.0);
  const epitrace::BenchDiffResult bad = epitrace::bench_diff(base, cand);
  EXPECT_FALSE(bad.ok);

  // tolerances.json overrides: widen the default, tighten one metric.
  JsonObject overrides;
  overrides["demo.days"] = 0.0;
  JsonObject tolerances;
  tolerances["default"] = 0.2;
  tolerances["overrides"] = Json(std::move(overrides));
  write_json_file(base + "/tolerances.json", Json(std::move(tolerances)));
  EXPECT_TRUE(epitrace::bench_diff(base, cand).ok);   // 11% < 20%
  write_bench(cand, 111.0, 25.0);                     // exact-match metric
  EXPECT_FALSE(epitrace::bench_diff(base, cand).ok);

  // A baseline bench missing from the candidate fails the gate.
  fs::remove(cand + "/BENCH_demo.json");
  EXPECT_FALSE(epitrace::bench_diff(base, cand).ok);

  fs::remove_all(root);
}

// ---------------------------------------------------- logging satellite ----

TEST(Logging, ParseLogLevelCoversAllSpellings) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(Logging, SinkCapturesFilteredMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);

  EPI_INFO("answer " << 42);
  EPI_DEBUG("below the level — never formatted");
  EPI_ERROR("boom");

  set_log_level(previous);
  set_log_sink(nullptr);  // restore the stderr default

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "answer 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "boom");
}

}  // namespace
}  // namespace epi
