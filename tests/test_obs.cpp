// Observability layer tests: trace recorder structure, metrics bucketing,
// dual-clock determinism, the no-perturbation guarantee (tracing on must
// not change the WorkflowReport), golden-file validation of an emitted
// Chrome trace, and the logging satellite (EPI_LOG_LEVEL parser + sink).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "mpilite/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "resilience/fault_injector.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "workflow/nightly.hpp"

namespace epi {
namespace {

using obs::MetricsRegistry;
using obs::TraceArgs;
using obs::TraceRecorder;

std::string joined(const std::vector<std::string>& errors) {
  std::string out;
  for (const auto& error : errors) out += error + "\n";
  return out;
}

// Counts non-metadata events in `doc` whose "cat" equals `category`.
std::size_t count_category(const Json& doc, const std::string& category) {
  std::size_t n = 0;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.contains("cat") && event.at("cat").as_string() == category) ++n;
  }
  return n;
}

// ----------------------------------------------------- trace recorder ----

TEST(TraceRecorder, NestedSpansExportAsValidChromeTrace) {
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("remote");
  trace.thread_name(pid, 0, "workflow");
  trace.begin(pid, 0, "outer", "phase", 0.0);
  trace.begin(pid, 0, "inner", "phase", 0.5);
  trace.end(pid, 0, 1.0);
  trace.end(pid, 0, 2.0);
  trace.complete(pid, 1, "task 7", "job", 0.25, 0.75);
  trace.instant(pid, 0, "milestone", "config-gen", 1.5);
  trace.counter(pid, "slurm.nodes", 1.0, TraceArgs{{"busy", Json(3.0)}});

  const obs::TraceCheckResult result = obs::check_trace_json(trace.to_json());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.spans, 3u);  // two B/E pairs + one X
  EXPECT_EQ(result.instants, 1u);
  EXPECT_EQ(result.counters, 1u);
  EXPECT_EQ(result.processes, 1u);
  EXPECT_EQ(trace.event_count(), 7u);
}

TEST(TraceRecorder, UnmatchedSpansFailValidation) {
  TraceRecorder stray_end(true);
  const std::uint32_t pid = stray_end.process("p");
  stray_end.end(pid, 0, 1.0);
  EXPECT_FALSE(obs::check_trace_json(stray_end.to_json()).ok);

  TraceRecorder left_open(true);
  const std::uint32_t pid2 = left_open.process("p");
  left_open.begin(pid2, 0, "never closed", "phase", 0.0);
  EXPECT_FALSE(obs::check_trace_json(left_open.to_json()).ok);
}

TEST(TraceRecorder, OutOfOrderEmissionIsSortedMonotone) {
  // Job spans are emitted at completion time, so raw emission order is not
  // timestamp order; the exporter must sort.
  TraceRecorder trace(true);
  const std::uint32_t pid = trace.process("remote");
  trace.complete(pid, 1, "late", "job", 5.0, 1.0);
  trace.complete(pid, 1, "early", "job", 1.0, 1.0);

  const Json doc = trace.to_json();
  const obs::TraceCheckResult result = obs::check_trace_json(doc);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  std::vector<std::string> names;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "X") names.push_back(event.at("name").as_string());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"early", "late"}));
}

TEST(TraceRecorder, DualClockIsZeroedUnderDeterministicTiming) {
  TraceRecorder det(true);
  EXPECT_EQ(det.wall_seconds(), 0.0);
  det.instant(det.process("p"), 0, "x", "c", 0.0);
  const Json doc = det.to_json();
  bool saw_instant = false;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "i") continue;
    saw_instant = true;
    EXPECT_EQ(event.at("args").at("wall_s").as_double(), 0.0);
  }
  EXPECT_TRUE(saw_instant);

  const TraceRecorder live(false);
  EXPECT_GE(live.wall_seconds(), 0.0);
}

// ---------------------------------------------------- metrics registry ----

TEST(MetricsRegistry, CountersGaugesAndHighWater) {
  MetricsRegistry metrics;
  metrics.add("c");
  metrics.add("c", 4);
  EXPECT_EQ(metrics.counter("c"), 5u);
  EXPECT_EQ(metrics.counter("missing"), 0u);

  metrics.set("g", 1.5);
  metrics.set("g", 0.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("g"), 0.5);
  metrics.set_max("peak", 2.0);
  metrics.set_max("peak", 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("peak"), 2.0);
}

TEST(MetricsRegistry, HistogramBucketsByUpperBound) {
  MetricsRegistry metrics;
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  metrics.observe("h", 0.5, bounds);   // <= 1.0
  metrics.observe("h", 1.0, bounds);   // on the bound: still <= 1.0
  metrics.observe("h", 3.0, bounds);   // <= 4.0
  metrics.observe("h", 100.0, bounds); // overflow
  EXPECT_EQ(metrics.histogram_count("h"), 4u);

  const Json snapshot = metrics.snapshot();
  const obs::MetricsCheckResult result = obs::check_metrics_json(snapshot);
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.histograms, 1u);

  const JsonArray& buckets =
      snapshot.at("histograms").at("h").at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(buckets[0].at("count").as_double(), 2.0);
  EXPECT_EQ(buckets[1].at("count").as_double(), 0.0);
  EXPECT_EQ(buckets[2].at("count").as_double(), 1.0);
  EXPECT_EQ(buckets[3].at("count").as_double(), 1.0);
  EXPECT_EQ(buckets[3].at("le").as_string(), "+Inf");
  EXPECT_DOUBLE_EQ(snapshot.at("histograms").at("h").at("sum").as_double(),
                   104.5);
}

TEST(MetricsRegistry, DefaultBoundsKickInWithoutExplicitOnes) {
  MetricsRegistry metrics;
  metrics.observe("latency_s", 0.01);
  metrics.observe("latency_s", 2.5);
  EXPECT_EQ(metrics.histogram_count("latency_s"), 2u);
  EXPECT_TRUE(obs::check_metrics_json(metrics.snapshot()).ok);
}

// ------------------------------------------------ nightly integration ----

NightlyConfig small_nightly_config() {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 2;
  config.sample_regions = {"WY", "VT"};
  config.executed_days = 20;
  config.deterministic_timing = true;
  return config;
}

WorkflowDesign small_design() {
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT", "MD"};
  return design;
}

TEST(ObsNightly, TracingDoesNotPerturbTheWorkflowReport) {
  const WorkflowDesign design = small_design();
  NightlyWorkflow plain(small_nightly_config());
  const WorkflowReport untraced = plain.run(design);

  obs::SessionOptions options;
  options.dir = "/tmp/episcale_test_obs_perturb";
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.trace = &session;
  NightlyWorkflow traced_engine(config);
  const WorkflowReport traced = traced_engine.run(design);

  EXPECT_EQ(untraced, traced);
  EXPECT_GT(session.trace().event_count(), 0u);
}

TEST(ObsNightly, TwoTracedRunsAreByteIdentical) {
  auto run_once = [] {
    obs::SessionOptions options;
    options.deterministic_timing = true;
    obs::Session session(std::move(options));
    NightlyConfig config = small_nightly_config();
    config.trace = &session;
    NightlyWorkflow engine(config);
    engine.run(small_design());
    return std::make_pair(session.trace().to_json().dump(),
                          session.metrics().snapshot().dump());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ObsNightly, GoldenTraceFileValidatesAndCoversEveryLayer) {
  const std::string dir = "/tmp/episcale_test_obs_golden";
  std::filesystem::remove_all(dir);

  obs::SessionOptions options;
  options.dir = dir;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.trace = &session;
  NightlyWorkflow engine(config);
  const WorkflowReport report = engine.run(small_design());
  session.write();

  const obs::TraceCheckResult result =
      obs::check_trace_file(session.trace_path());
  EXPECT_TRUE(result.ok) << joined(result.errors);
  EXPECT_EQ(result.processes, 4u);  // home, remote, wan, exec (farm lanes)

  const Json doc = read_json_file(session.trace_path());
  // One 'X' span per PhaseRecord in the report timeline.
  EXPECT_EQ(count_category(doc, "phase"), report.timeline.size());
  // Per-job spans from the DES, per-file WAN spans, per-region instants.
  EXPECT_GT(count_category(doc, "job"), 0u);
  EXPECT_GT(count_category(doc, "wan"), 0u);
  EXPECT_GT(count_category(doc, "config-gen"), 0u);
  EXPECT_GT(count_category(doc, "db-snapshot"), 0u);
  EXPECT_GT(count_category(doc, "execute"), 0u);
  // Farm task spans from the exec pool (sampled simulations).
  EXPECT_GT(count_category(doc, "exec"), 0u);

  const obs::MetricsCheckResult metrics_result =
      obs::check_metrics_file(session.metrics_path());
  EXPECT_TRUE(metrics_result.ok) << joined(metrics_result.errors);
  EXPECT_GT(metrics_result.counters, 0u);
  EXPECT_GT(session.metrics().counter("nightly.runs"), 0u);
  EXPECT_GT(session.metrics().counter("slurm.jobs_completed"), 0u);
  EXPECT_GT(session.metrics().counter("wan.transfers"), 0u);
  EXPECT_GT(session.metrics().counter("persondb.servers_started"), 0u);

  std::filesystem::remove_all(dir);
}

TEST(ObsNightly, FaultInstantsAppearWhenInjectorEnabled) {
  obs::SessionOptions options;
  options.deterministic_timing = true;
  obs::Session session(std::move(options));
  NightlyConfig config = small_nightly_config();
  config.faults.enabled = true;
  config.faults.seed = 777;
  config.faults.node_mtbf_hours = 30.0 * 24.0;
  config.faults.node_repair_hours = 2.0;
  config.faults.wan_degraded_prob = 0.3;
  config.faults.db_drop_prob = 0.5;
  config.checkpoint.interval_ticks = 60;
  config.trace = &session;
  NightlyWorkflow engine(config);
  engine.run(small_design());

  const Json doc = session.trace().to_json();
  EXPECT_GT(count_category(doc, "fault"), 0u);
  EXPECT_TRUE(obs::check_trace_json(doc).ok);
}

TEST(ObsSession, FromEnvFollowsEpiTrace) {
  unsetenv("EPI_TRACE");
  EXPECT_EQ(obs::Session::from_env(), nullptr);
  setenv("EPI_TRACE", "/tmp/episcale_test_obs_env", 1);
  const std::unique_ptr<obs::Session> session = obs::Session::from_env(true);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->dir(), "/tmp/episcale_test_obs_env");
  EXPECT_TRUE(session->trace().deterministic_timing());
  unsetenv("EPI_TRACE");
}

// ------------------------------------------------------ mpilite hooks ----

TEST(ObsMpilite, HooksCountMessagesAndCollectives) {
  MetricsRegistry metrics;
  mpilite::ObsHooks hooks;
  hooks.metrics = &metrics;
  hooks.deterministic_timing = true;
  mpilite::Runtime::run(
      2,
      [](mpilite::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send<int>(1, 3, std::vector<int>{1, 2, 3});
        } else {
          const auto received = comm.recv<int>(0, 3);
          EXPECT_EQ(received.size(), 3u);
        }
        comm.allreduce(1.0, mpilite::ReduceOp::kSum);
        comm.barrier();
      },
      hooks);

  EXPECT_GT(metrics.counter("mpilite.msgs.000->001"), 0u);
  EXPECT_GT(metrics.counter("mpilite.bytes.000->001"), 0u);
  // One top-level observation per rank; nested internal collectives must
  // not double-report.
  EXPECT_EQ(metrics.histogram_count("mpilite.allreduce_s"), 2u);
  EXPECT_EQ(metrics.histogram_count("mpilite.barrier_s"), 2u);
  // Deterministic timing: every observed duration is exactly zero.
  const Json snapshot = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at("histograms")
                       .at("mpilite.allreduce_s")
                       .at("sum")
                       .as_double(),
                   0.0);
}

TEST(ObsMpilite, NullHooksLeaveNoFootprint) {
  mpilite::Runtime::run(2, [](mpilite::Comm& comm) { comm.barrier(); },
                        mpilite::ObsHooks{});
  // Nothing to assert beyond "it ran": the null path must not crash.
  SUCCEED();
}

// ---------------------------------------------------- logging satellite ----

TEST(Logging, ParseLogLevelCoversAllSpellings) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(Logging, SinkCapturesFilteredMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);

  EPI_INFO("answer " << 42);
  EPI_DEBUG("below the level — never formatted");
  EPI_ERROR("boom");

  set_log_level(previous);
  set_log_sink(nullptr);  // restore the stderr default

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "answer 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "boom");
}

}  // namespace
}  // namespace epi
