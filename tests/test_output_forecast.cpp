#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "analytics/forecast.hpp"
#include "analytics/output_io.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

struct Fixture {
  SyntheticRegion region;
  DiseaseModel model;
  std::vector<SimOutput> ensemble;
  Tick ticks = 70;

  Fixture() : model(covid_model()) {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;
    config.seed = 99;
    region = generate_region(config);
    CovidParams params;
    params.transmissibility = 0.28;
    model = covid_model(params);
    for (std::uint32_t rep = 0; rep < 5; ++rep) {
      SimulationConfig sim_config;
      sim_config.num_ticks = ticks;
      sim_config.seed = 31337;
      sim_config.replicate = rep;
      sim_config.seeds = {SeedSpec{0, 10, 0}};
      ensemble.push_back(run_simulation(region.network, region.population,
                                        model, sim_config));
    }
  }
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

// ----------------------------------------------------------- output I/O ---

TEST(OutputIo, RoundTripsTransitionLog) {
  const auto& f = fixture();
  const auto& events = f.ensemble[0].transitions;
  std::stringstream buffer;
  const std::uint64_t bytes =
      write_transitions_csv(buffer, events, f.model);
  EXPECT_EQ(bytes, buffer.str().size());
  const auto restored = read_transitions_csv(buffer, f.model);
  ASSERT_EQ(restored.size(), events.size());
  for (std::size_t i = 0; i < events.size(); i += 7) {
    EXPECT_EQ(restored[i].tick, events[i].tick);
    EXPECT_EQ(restored[i].person, events[i].person);
    EXPECT_EQ(restored[i].exit_state, events[i].exit_state);
    EXPECT_EQ(restored[i].infector, events[i].infector);
  }
}

TEST(OutputIo, LineFormatMatchesPaperDescription) {
  // "tick of the transition event, the identifier of the person, their
  // exit state, and the identifier of the person causing the transition".
  std::vector<TransitionEvent> events = {
      TransitionEvent{3, 17, fixture().model.state_id(covid_states::kExposed),
                      42},
      TransitionEvent{5, 17,
                      fixture().model.state_id(covid_states::kPresymptomatic),
                      kNoPerson}};
  std::stringstream buffer;
  write_transitions_csv(buffer, events, fixture().model);
  std::string line;
  std::getline(buffer, line);
  EXPECT_EQ(line, "tick,pid,exitState,contactPid");
  std::getline(buffer, line);
  EXPECT_EQ(line, "3,17,Exposed,42");
  std::getline(buffer, line);
  EXPECT_EQ(line, "5,17,Presymptomatic,");  // no cause for progressions
}

TEST(OutputIo, FileRoundTrip) {
  const auto& f = fixture();
  const std::string path = "/tmp/episcale_test_transitions.csv";
  write_transitions_file(path, f.ensemble[1].transitions, f.model);
  const auto restored = read_transitions_file(path, f.model);
  EXPECT_EQ(restored.size(), f.ensemble[1].transitions.size());
  std::filesystem::remove(path);
}

TEST(OutputIo, UnknownStateRejected) {
  std::stringstream buffer("tick,pid,exitState,contactPid\n1,2,Zombie,\n");
  EXPECT_THROW(read_transitions_csv(buffer, fixture().model), ConfigError);
}

TEST(OutputIo, MeasuredBytesNearAccountingEstimate) {
  // raw_output_bytes() assumes ~40 bytes/line at production id widths; the
  // real serialization of a small-scale log should be within 2x.
  const auto& f = fixture();
  std::stringstream buffer;
  const std::uint64_t bytes =
      write_transitions_csv(buffer, f.ensemble[0].transitions, f.model);
  const std::uint64_t estimate = raw_output_bytes(f.ensemble[0]);
  EXPECT_GT(bytes, estimate / 3);
  EXPECT_LT(bytes, estimate * 2);
}

// ------------------------------------------------------------- forecast ---

TEST(Forecast, QuantileLevelsAreTheHubSet) {
  const auto& levels = forecast_quantile_levels();
  EXPECT_EQ(levels.size(), 23u);
  EXPECT_DOUBLE_EQ(levels.front(), 0.01);
  EXPECT_DOUBLE_EQ(levels.back(), 0.99);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i], levels[i - 1]);
  }
}

TEST(Forecast, ProductCoversTargetsAndHorizons) {
  const auto& f = fixture();
  const ForecastProduct product = build_forecast(
      f.ensemble, f.region.population, f.model, /*forecast_tick=*/28,
      /*max_horizon_weeks=*/4, "DC");
  EXPECT_EQ(product.entries.size(), 4u * 4u);  // 4 targets x 4 weeks
  for (const ForecastEntry& entry : product.entries) {
    EXPECT_EQ(entry.quantiles.size(), forecast_quantile_levels().size());
    // Quantiles are monotone.
    for (std::size_t q = 1; q < entry.quantiles.size(); ++q) {
      EXPECT_GE(entry.quantiles[q], entry.quantiles[q - 1] - 1e-9);
    }
    EXPECT_DOUBLE_EQ(entry.point, entry.quantiles[11]);  // the median level
  }
}

TEST(Forecast, CumulativeTargetsGrowWithHorizon) {
  const auto& f = fixture();
  const ForecastProduct product = build_forecast(
      f.ensemble, f.region.population, f.model, 28, 4, "DC");
  const auto& week1 =
      product.entry(AggregationTarget::kCumulativeConfirmed, 1);
  const auto& week4 =
      product.entry(AggregationTarget::kCumulativeConfirmed, 4);
  EXPECT_GE(week4.point, week1.point);
  EXPECT_GT(week4.point, 0.0);
}

TEST(Forecast, CsvSerialization) {
  const auto& f = fixture();
  const ForecastProduct product = build_forecast(
      f.ensemble, f.region.population, f.model, 28, 2, "DC");
  std::ostringstream out;
  product.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("region,target,horizon_weeks,quantile_level,value"),
            std::string::npos);
  EXPECT_NE(text.find("DC,new_confirmed,1,0.5,"), std::string::npos);
  // header + 8 entries x 23 quantiles.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1 + 8 * 23);
}

TEST(Forecast, ValidationErrors) {
  const auto& f = fixture();
  EXPECT_THROW(build_forecast({}, f.region.population, f.model, 10, 2, "DC"),
               Error);
  EXPECT_THROW(build_forecast(f.ensemble, f.region.population, f.model, 10, 0,
                              "DC"),
               Error);
  const ForecastProduct product =
      build_forecast(f.ensemble, f.region.population, f.model, 28, 2, "DC");
  EXPECT_THROW(product.entry(AggregationTarget::kNewConfirmed, 9), Error);
}

}  // namespace
}  // namespace epi
