#include "persondb/person_db.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

const Population& test_population() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 1000.0;
    config.seed = 11;
    return generate_region(config);
  }();
  return region.population;
}

TEST(PersonDb, TraitsMatchPopulation) {
  PersonDbServer server(test_population(), 4);
  auto conn = server.connect();
  ASSERT_TRUE(conn.has_value());
  for (PersonId p = 0; p < server.person_count(); p += 31) {
    const PersonTraits& expected = test_population().person(p);
    const PersonTraits& actual = conn->traits(p);
    EXPECT_EQ(actual.age, expected.age);
    EXPECT_EQ(actual.household, expected.household);
    EXPECT_EQ(actual.county, expected.county);
  }
  EXPECT_THROW(conn->traits(server.person_count()), Error);
}

TEST(PersonDb, CountyIndexComplete) {
  PersonDbServer server(test_population(), 2);
  auto conn = server.connect();
  ASSERT_TRUE(conn.has_value());
  std::size_t total = 0;
  for (std::size_t c = 0; c < conn->county_count(); ++c) {
    const auto persons = conn->persons_in_county(static_cast<std::uint16_t>(c));
    total += persons.size();
    for (PersonId p : persons) {
      EXPECT_EQ(conn->traits(p).county, c);
    }
  }
  EXPECT_EQ(total, server.person_count());
}

TEST(PersonDb, HouseholdMembersContiguous) {
  PersonDbServer server(test_population(), 2);
  auto conn = server.connect();
  const auto members = conn->household_members(0);
  ASSERT_FALSE(members.empty());
  for (PersonId p : members) {
    EXPECT_EQ(conn->traits(p).household, 0u);
  }
}

TEST(PersonDb, AgeGroupScan) {
  PersonDbServer server(test_population(), 2);
  auto conn = server.connect();
  const auto seniors = conn->persons_in_age_group(AgeGroup::kSenior);
  for (PersonId p : seniors) {
    EXPECT_GE(conn->traits(p).age, 65);
  }
  EXPECT_GT(seniors.size(), 0u);
}

TEST(PersonDb, ConnectionLimitEnforced) {
  PersonDbServer server(test_population(), 2);
  auto c1 = server.connect();
  auto c2 = server.connect();
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(server.active_connections(), 2u);
  auto c3 = server.connect();
  EXPECT_FALSE(c3.has_value());  // pool exhausted, as Postgres would refuse
}

TEST(PersonDb, ConnectionReleaseFreesSlot) {
  PersonDbServer server(test_population(), 1);
  {
    auto conn = server.connect();
    ASSERT_TRUE(conn.has_value());
    EXPECT_FALSE(server.connect().has_value());
  }
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_TRUE(server.connect().has_value());
  EXPECT_EQ(server.peak_connections(), 1u);
}

TEST(PersonDb, MovedConnectionDoesNotDoubleRelease) {
  PersonDbServer server(test_population(), 1);
  auto conn = server.connect();
  ASSERT_TRUE(conn.has_value());
  DbConnection moved = std::move(*conn);
  EXPECT_EQ(server.active_connections(), 1u);
  EXPECT_EQ(moved.person_count(), server.person_count());
}

TEST(PersonDb, QueriesServedAccounting) {
  PersonDbServer server(test_population(), 1);
  auto conn = server.connect();
  conn->traits(0);
  conn->traits(1);
  const auto county0 = conn->persons_in_county(0);
  EXPECT_EQ(conn->queries_served(), 2 + county0.size());
}

TEST(PersonDb, SnapshotRoundTrip) {
  const std::string path = "/tmp/episcale_test_snapshot.bin";
  {
    PersonDbServer server(test_population(), 4);
    server.save_snapshot(path);
  }
  auto restored = PersonDbServer::from_snapshot(path, 4);
  EXPECT_EQ(restored->region(), "DC");
  EXPECT_EQ(restored->person_count(), test_population().person_count());
  auto conn = restored->connect();
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(conn->traits(5).age, test_population().person(5).age);
  std::filesystem::remove(path);
}

TEST(PersonDb, SnapshotRejectsGarbage) {
  const std::string path = "/tmp/episcale_test_bad_snapshot.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(PersonDbServer::from_snapshot(path, 2), Error);
  std::filesystem::remove(path);
}

TEST(PersonDb, RegistryStartsOnePerRegion) {
  PersonDbRegistry registry;
  EXPECT_FALSE(registry.is_running("DC"));
  registry.start(test_population(), 8);
  EXPECT_TRUE(registry.is_running("DC"));
  EXPECT_EQ(registry.running_count(), 1u);
  EXPECT_EQ(registry.get("DC").max_connections(), 8u);
  EXPECT_THROW(registry.get("VA"), Error);
  registry.stop("DC");
  EXPECT_FALSE(registry.is_running("DC"));
}

TEST(PersonDb, ZeroConnectionsRejected) {
  EXPECT_THROW(PersonDbServer(test_population(), 0), Error);
}

}  // namespace
}  // namespace epi
