#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "cluster/machine.hpp"
#include "cluster/slurm_sim.hpp"
#include "cluster/task_model.hpp"
#include "cluster/transfer.hpp"
#include "persondb/person_db.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "resilience/retry_policy.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"
#include "workflow/nightly.hpp"

namespace epi {
namespace {

// -------------------------------------------------------- retry policy ----

TEST(RetryPolicy, ExponentialBackoffWithCap) {
  RetryPolicy policy;
  policy.base_delay_s = 10.0;
  policy.multiplier = 2.0;
  policy.max_delay_s = 35.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(2, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(3, 0.5), 35.0);  // capped, not 40
  EXPECT_DOUBLE_EQ(policy.delay_s(10, 0.5), 35.0);
}

TEST(RetryPolicy, JitterIsSymmetricAndBounded) {
  RetryPolicy policy;
  policy.base_delay_s = 100.0;
  policy.jitter_fraction = 0.25;
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.5), 100.0);  // centred
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.0), 75.0);   // low edge
  EXPECT_NEAR(policy.delay_s(1, 0.999999), 125.0, 0.01);
}

TEST(RetryPolicy, GiveUpByAttemptsAndDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.deadline_s = 100.0;
  EXPECT_FALSE(policy.give_up(1, 0.0));
  EXPECT_FALSE(policy.give_up(2, 0.0));
  EXPECT_TRUE(policy.give_up(3, 0.0));    // attempts exhausted
  EXPECT_TRUE(policy.give_up(1, 100.0));  // deadline crossed
  policy.deadline_s = 0.0;                // no deadline
  EXPECT_FALSE(policy.give_up(1, 1e9));
}

TEST(RetryPolicy, InvalidInputsRejected) {
  RetryPolicy policy;
  EXPECT_THROW(policy.delay_s(0, 0.5), Error);
  EXPECT_THROW(policy.delay_s(1, 1.5), Error);
}

// ------------------------------------------------------ fault injector ----

TEST(FaultInjector, DisabledInjectorIsInert) {
  FaultSpec spec;  // enabled = false
  spec.node_mtbf_hours = 1.0;
  spec.wan_failure_prob = 1.0;
  spec.db_drop_prob = 1.0;
  spec.sim_failure_prob = 1.0;
  const FaultInjector injector(spec);
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.node_outages(100, 1000.0).empty());
  EXPECT_FALSE(injector.wan_attempt(0, 1).fail);
  EXPECT_DOUBLE_EQ(injector.wan_attempt(0, 1).throughput_factor, 1.0);
  EXPECT_FALSE(injector.db_drop("VA", 0));
  EXPECT_FALSE(injector.sim_failure(0, 1));
}

TEST(FaultInjector, OutageScheduleDeterministicAndSorted) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 7;
  spec.node_mtbf_hours = 100.0;
  spec.node_repair_hours = 2.0;
  const FaultInjector a(spec);
  const FaultInjector b(spec);
  const auto outages_a = a.node_outages(50, 500.0);
  const auto outages_b = b.node_outages(50, 500.0);
  ASSERT_FALSE(outages_a.empty());
  ASSERT_EQ(outages_a.size(), outages_b.size());
  for (std::size_t i = 0; i < outages_a.size(); ++i) {
    EXPECT_EQ(outages_a[i].node, outages_b[i].node);
    EXPECT_DOUBLE_EQ(outages_a[i].down_hours, outages_b[i].down_hours);
    EXPECT_DOUBLE_EQ(outages_a[i].up_hours,
                     outages_a[i].down_hours + 2.0);
  }
  for (std::size_t i = 1; i < outages_a.size(); ++i) {
    EXPECT_GE(outages_a[i].down_hours, outages_a[i - 1].down_hours);
  }
  spec.seed = 8;
  const auto outages_c = FaultInjector(spec).node_outages(50, 500.0);
  bool different = outages_c.size() != outages_a.size();
  for (std::size_t i = 0; !different && i < outages_a.size(); ++i) {
    different = outages_c[i].down_hours != outages_a[i].down_hours;
  }
  EXPECT_TRUE(different);
}

TEST(FaultInjector, OutageRateMatchesMtbf) {
  FaultSpec spec;
  spec.enabled = true;
  spec.node_mtbf_hours = 720.0;  // 30 days
  spec.node_repair_hours = 2.0;
  const FaultInjector injector(spec);
  // 720 nodes for 10 hours at MTBF 720h -> expect ~10 crashes.
  const auto outages = injector.node_outages(720, 10.0);
  EXPECT_GT(outages.size(), 2u);
  EXPECT_LT(outages.size(), 30u);
}

TEST(FaultInjector, WanDrawsAreKeyedNotSequential) {
  FaultSpec spec;
  spec.enabled = true;
  spec.wan_failure_prob = 0.5;
  const FaultInjector injector(spec);
  // Same key -> same outcome regardless of query order or repetition.
  const WanAttemptFault first = injector.wan_attempt(3, 1);
  injector.wan_attempt(99, 2);
  const WanAttemptFault again = injector.wan_attempt(3, 1);
  EXPECT_EQ(first.fail, again.fail);
  EXPECT_DOUBLE_EQ(first.throughput_factor, again.throughput_factor);
  // Keys explore both outcomes at p = 0.5.
  int fails = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    fails += injector.wan_attempt(seq, 1).fail ? 1 : 0;
  }
  EXPECT_GT(fails, 60);
  EXPECT_LT(fails, 140);
}

TEST(FaultInjector, DbDropKeyedByRegionHash) {
  FaultSpec spec;
  spec.enabled = true;
  spec.db_drop_prob = 0.5;
  const FaultInjector injector(spec);
  int va_drops = 0, wy_drops = 0, diff = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const bool va = injector.db_drop("VA", seq);
    const bool wy = injector.db_drop("WY", seq);
    va_drops += va;
    wy_drops += wy;
    diff += va != wy;
  }
  EXPECT_GT(va_drops, 60);
  EXPECT_LT(va_drops, 140);
  EXPECT_GT(wy_drops, 60);
  EXPECT_LT(wy_drops, 140);
  EXPECT_GT(diff, 0);  // regions have independent streams
}

TEST(FaultInjector, InvalidSpecRejected) {
  FaultSpec spec;
  spec.wan_failure_prob = 1.5;
  EXPECT_THROW(FaultInjector{spec}, Error);
  spec = FaultSpec{};
  spec.wan_degraded_factor = 0.0;
  EXPECT_THROW(FaultInjector{spec}, Error);
}

// ---------------------------------------------------------- checkpoint ----

TEST(Checkpoint, InactiveWithoutInterval) {
  CheckpointSpec spec;  // interval_ticks = 0
  EXPECT_FALSE(spec.active());
  EXPECT_EQ(spec.checkpoints_per_run(), 0u);
  EXPECT_DOUBLE_EQ(spec.overhead_hours(), 0.0);
  EXPECT_DOUBLE_EQ(spec.saved_hours(2.0, 1.5), 0.0);
}

TEST(Checkpoint, CountsAndOverhead) {
  CheckpointSpec spec;
  spec.interval_ticks = 100;
  spec.job_ticks = 365;
  spec.write_cost_s = 36.0;
  // Checkpoints after ticks 100, 200, 300 (none at/after the end).
  EXPECT_EQ(spec.checkpoints_per_run(), 3u);
  EXPECT_NEAR(spec.overhead_hours(), 3.0 * 36.0 / 3600.0, 1e-12);
  // A tick-365 job of 1 hour useful runtime: checkpoint period ~0.274h.
  EXPECT_NEAR(spec.period_hours(1.0), 100.0 / 365.0, 1e-12);
}

TEST(Checkpoint, SavedProgressIsFloorOfCompletedPeriods) {
  CheckpointSpec spec;
  spec.interval_ticks = 100;
  spec.job_ticks = 400;
  spec.write_cost_s = 0.0;  // pure floor semantics
  const double period = spec.period_hours(4.0);  // 1h per checkpoint period
  EXPECT_DOUBLE_EQ(period, 1.0);
  EXPECT_DOUBLE_EQ(spec.saved_hours(4.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(spec.saved_hours(4.0, 1.7), 1.0);
  EXPECT_DOUBLE_EQ(spec.saved_hours(4.0, 2.99), 2.0);
  // Never beyond the last checkpoint (3 checkpoints at 400/100 - 1).
  EXPECT_DOUBLE_EQ(spec.saved_hours(4.0, 100.0), 3.0);
}

// -------------------------------------------------------------- ledger ----

TEST(Ledger, CountsAndSummary) {
  ResilienceLedger ledger;
  ledger.record(FaultKind::kNodeCrash, 1.0, "node 3");
  ledger.record(FaultKind::kNodeCrash, 2.0, "node 9");
  ledger.record(FaultKind::kJobKilled, 2.0);
  ledger.record(FaultKind::kJobRequeued, 2.0);
  ledger.record(FaultKind::kWanFailure, 0.0);
  ledger.add_wasted_node_hours(12.5);
  ledger.add_retry_wait_seconds(7200.0);
  const ResilienceSummary summary = ledger.summary();
  EXPECT_EQ(summary.node_crashes, 2u);
  EXPECT_EQ(summary.jobs_killed, 1u);
  EXPECT_EQ(summary.jobs_requeued, 1u);
  EXPECT_EQ(summary.wan_failures, 1u);
  EXPECT_EQ(summary.db_drops, 0u);
  EXPECT_DOUBLE_EQ(summary.wasted_node_hours, 12.5);
  EXPECT_DOUBLE_EQ(summary.retry_wait_hours, 2.0);
  EXPECT_EQ(ledger.events().size(), 5u);
  EXPECT_STREQ(fault_kind_name(FaultKind::kDbReconnect), "db-reconnect");
}

// ------------------------------------------------------ DES with faults ---

std::vector<SimTask> small_tasks() {
  return make_workflow_tasks({"VA", "WY", "MD"}, 6, 4);
}

TEST(SlurmSimFaults, NullInjectorMatchesSeedPath) {
  const auto tasks = small_tasks();
  DesConfig plain;
  FaultSpec off;  // enabled = false
  const FaultInjector injector(off);
  DesConfig with_disabled = plain;
  with_disabled.faults = &injector;
  Rng rng_a(42), rng_b(42);
  const DesResult a = simulate_cluster(bridges_cluster(), tasks, plain, rng_a);
  const DesResult b =
      simulate_cluster(bridges_cluster(), tasks, with_disabled, rng_b);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].task_id, b.jobs[i].task_id);
    EXPECT_DOUBLE_EQ(a.jobs[i].start_hours, b.jobs[i].start_hours);
    EXPECT_DOUBLE_EQ(a.jobs[i].end_hours, b.jobs[i].end_hours);
  }
  EXPECT_DOUBLE_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_DOUBLE_EQ(a.busy_node_hours, b.busy_node_hours);
  EXPECT_EQ(b.jobs_requeued, 0u);
  EXPECT_DOUBLE_EQ(b.wasted_node_hours, 0.0);
}

TEST(SlurmSimFaults, CrashesKillAndRequeueUntilDone) {
  // Long jobs on a small, saturated cluster: crashes must land on busy
  // nodes and the killed jobs must requeue and finish.
  const auto tasks = make_workflow_tasks({"VA", "WY", "MD"}, 6, 4, 25.0);
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 11;
  spec.node_mtbf_hours = 30.0;  // brutally unreliable: ~1 crash/node/30h
  spec.node_repair_hours = 0.5;
  const FaultInjector injector(spec);
  ResilienceLedger ledger;
  DesConfig config;
  config.faults = &injector;
  config.ledger = &ledger;
  config.fault_horizon_hours = 500.0;
  ClusterSpec cluster = bridges_cluster();
  cluster.nodes = 24;
  Rng rng(43);
  const DesResult result = simulate_cluster(cluster, tasks, config, rng);
  // No window: every job eventually completes despite the kills.
  EXPECT_EQ(result.jobs.size(), tasks.size());
  EXPECT_EQ(result.unfinished, 0u);
  EXPECT_GT(result.jobs_requeued, 0u);
  EXPECT_GT(result.wasted_node_hours, 0.0);
  EXPECT_EQ(ledger.count(FaultKind::kJobRequeued), result.jobs_requeued);
  EXPECT_GT(ledger.count(FaultKind::kNodeCrash), 0u);
  EXPECT_GE(ledger.count(FaultKind::kNodeCrash),
            ledger.count(FaultKind::kJobKilled));
}

TEST(SlurmSimFaults, DeterministicUnderFixedSeeds) {
  const auto tasks = small_tasks();
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 12;
  spec.node_mtbf_hours = 50.0;
  const FaultInjector injector(spec);
  auto run = [&] {
    DesConfig config;
    config.faults = &injector;
    Rng rng(44);
    return simulate_cluster(bridges_cluster(), tasks, config, rng);
  };
  const DesResult a = run();
  const DesResult b = run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].task_id, b.jobs[i].task_id);
    EXPECT_DOUBLE_EQ(a.jobs[i].end_hours, b.jobs[i].end_hours);
  }
  EXPECT_DOUBLE_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_DOUBLE_EQ(a.wasted_node_hours, b.wasted_node_hours);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
}

TEST(SlurmSimFaults, CheckpointingReducesWastedWork) {
  // Long jobs on unreliable hardware: requeue-from-checkpoint must waste
  // less execution than restart-from-scratch under the same faults.
  std::vector<SimTask> tasks;
  for (std::uint64_t i = 0; i < 40; ++i) {
    tasks.push_back(SimTask{i, "VA", static_cast<std::uint32_t>(i), 0, 4,
                            5.0, 28});
  }
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 13;
  spec.node_mtbf_hours = 60.0;
  spec.node_repair_hours = 0.5;
  const FaultInjector injector(spec);
  auto run = [&](std::uint32_t interval) {
    DesConfig config;
    config.faults = &injector;
    config.checkpoint.interval_ticks = interval;
    config.checkpoint.job_ticks = 365;
    config.checkpoint.write_cost_s = 30.0;
    config.fault_horizon_hours = 500.0;
    ClusterSpec cluster = bridges_cluster();
    cluster.nodes = 40;  // keep many jobs running long
    Rng rng(45);
    return simulate_cluster(cluster, tasks, config, rng);
  };
  const DesResult none = run(0);
  const DesResult frequent = run(12);
  EXPECT_EQ(none.jobs.size(), tasks.size());
  EXPECT_EQ(frequent.jobs.size(), tasks.size());
  EXPECT_GT(none.jobs_requeued, 0u);
  EXPECT_GT(none.wasted_node_hours, frequent.wasted_node_hours);
  // ...and the checkpointing run pays I/O overhead instead.
  EXPECT_GT(frequent.checkpoint_node_hours, 0.0);
  EXPECT_DOUBLE_EQ(none.checkpoint_node_hours, 0.0);
}

TEST(SlurmSimFaults, WindowStillCutsOffLateJobs) {
  ClusterSpec tiny = bridges_cluster();
  tiny.nodes = 12;
  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  const auto tasks = make_workflow_tasks(regions, 12, 15);
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 14;
  spec.node_mtbf_hours = 100.0;
  const FaultInjector injector(spec);
  DesConfig config;
  config.faults = &injector;
  config.window_hours = 10.0;
  Rng rng(46);
  const DesResult result = simulate_cluster(tiny, tasks, config, rng);
  EXPECT_GT(result.unfinished, 0u);
  EXPECT_LT(result.jobs.size(), tasks.size());
}

// --------------------------------------------------- transfer + retries ---

TEST(TransferResilience, ZeroByteTransferPaysOverhead) {
  GlobusTransfer wan;
  const double seconds = wan.transfer("empty manifest", 0, true);
  EXPECT_DOUBLE_EQ(seconds, WanLinkSpec{}.per_transfer_overhead_s);
  ASSERT_EQ(wan.ledger().size(), 1u);
  EXPECT_EQ(wan.ledger()[0].attempts, 1u);
}

TEST(TransferResilience, PerDirectionSecondTotals) {
  GlobusTransfer wan;
  const double out_s = wan.transfer("configs", 1'000'000'000, true);
  const double back_s = wan.transfer("summaries", 4'000'000'000, false);
  const double out2_s = wan.transfer("more configs", 500, true);
  EXPECT_DOUBLE_EQ(wan.total_seconds_to_remote(), out_s + out2_s);
  EXPECT_DOUBLE_EQ(wan.total_seconds_to_home(), back_s);
  EXPECT_DOUBLE_EQ(wan.total_seconds(),
                   wan.total_seconds_to_remote() + wan.total_seconds_to_home());
}

TEST(TransferResilience, DisabledInjectorMatchesSeedArithmetic) {
  FaultSpec off;
  const FaultInjector injector(off);
  GlobusTransfer plain;
  GlobusTransfer armed;
  armed.enable_resilience(&injector, RetryPolicy{});
  const double a = plain.transfer("x", 123'456'789, true);
  const double b = armed.transfer("x", 123'456'789, true);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(TransferResilience, FailuresRetryWithBackoffAndLedger) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 21;
  spec.wan_failure_prob = 0.6;  // most attempts fail; retries kick in
  const FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_delay_s = 10.0;
  ResilienceLedger ledger;
  GlobusTransfer wan;
  wan.enable_resilience(&injector, policy, &ledger);
  double plain_total = 0.0, armed_total = 0.0;
  GlobusTransfer plain;
  for (int i = 0; i < 20; ++i) {
    const std::string name = "transfer " + std::to_string(i);
    armed_total += wan.transfer(name, 50'000'000, i % 2 == 0);
    plain_total += plain.transfer(name, 50'000'000, i % 2 == 0);
  }
  // Retries cost time: overhead of failed attempts + backoff waits.
  EXPECT_GT(armed_total, plain_total);
  EXPECT_GT(ledger.count(FaultKind::kWanFailure), 0u);
  EXPECT_EQ(ledger.count(FaultKind::kWanRetry),
            ledger.count(FaultKind::kWanFailure));
  std::uint32_t max_attempts_seen = 0;
  for (const TransferRecord& record : wan.ledger()) {
    max_attempts_seen = std::max(max_attempts_seen, record.attempts);
  }
  EXPECT_GT(max_attempts_seen, 1u);
  // Volumes are unchanged by retries.
  EXPECT_EQ(wan.total_bytes_to_remote(), plain.total_bytes_to_remote());
  EXPECT_EQ(wan.total_bytes_to_home(), plain.total_bytes_to_home());
}

TEST(TransferResilience, ExhaustedRetriesThrow) {
  FaultSpec spec;
  spec.enabled = true;
  spec.wan_failure_prob = 1.0;  // nothing ever succeeds
  const FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_attempts = 3;
  GlobusTransfer wan;
  wan.enable_resilience(&injector, policy);
  EXPECT_THROW(wan.transfer("doomed", 1000, true), Error);
}

TEST(TransferResilience, DegradedThroughputSlowsTransfer) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 22;
  spec.wan_degraded_prob = 1.0;  // every attempt degraded
  spec.wan_degraded_factor = 0.25;
  const FaultInjector injector(spec);
  GlobusTransfer armed;
  armed.enable_resilience(&injector, RetryPolicy{});
  GlobusTransfer plain;
  const std::uint64_t bytes = 10'000'000'000ULL;
  const double degraded = armed.transfer("big", bytes, true);
  const double nominal = plain.transfer("big", bytes, true);
  EXPECT_NEAR(degraded - WanLinkSpec{}.per_transfer_overhead_s,
              4.0 * (nominal - WanLinkSpec{}.per_transfer_overhead_s), 1e-6);
}

// ----------------------------------------------------- person-db drops ----

const Population& small_population() {
  static const Population population = [] {
    SynthPopConfig config;
    config.region = "WY";
    config.scale = 1.0 / 4000.0;
    config.seed = 99;
    return generate_region(config).population;
  }();
  return population;
}

TEST(PersonDbResilience, DisabledInjectorBehavesLikeConnect) {
  PersonDbServer server(small_population(), 4);
  FaultSpec off;
  const FaultInjector injector(off);
  const ResilientConnectResult result =
      server.connect_resilient(injector, RetryPolicy{});
  EXPECT_TRUE(result.connection.has_value());
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_DOUBLE_EQ(result.wait_s, 0.0);
}

TEST(PersonDbResilience, DropsRetryThenReconnect) {
  PersonDbServer server(small_population(), 8);
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 31;
  spec.db_drop_prob = 0.5;
  const FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.base_delay_s = 1.0;
  ResilienceLedger ledger;
  bool saw_retry = false;
  for (int i = 0; i < 6; ++i) {
    const ResilientConnectResult result =
        server.connect_resilient(injector, policy, &ledger);
    ASSERT_TRUE(result.connection.has_value()) << "connect " << i;
    if (result.attempts > 1) {
      saw_retry = true;
      EXPECT_GT(result.wait_s, 0.0);
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(ledger.count(FaultKind::kDbDrop), 0u);
  EXPECT_GT(ledger.count(FaultKind::kDbReconnect), 0u);
}

TEST(PersonDbResilience, PermanentDropsGiveUp) {
  PersonDbServer server(small_population(), 4);
  FaultSpec spec;
  spec.enabled = true;
  spec.db_drop_prob = 1.0;
  const FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_attempts = 4;
  const ResilientConnectResult result =
      server.connect_resilient(injector, policy);
  EXPECT_FALSE(result.connection.has_value());
  EXPECT_EQ(result.attempts, 4u);
}

// --------------------------------------- nightly workflow determinism ----

NightlyConfig small_nightly_config() {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 2;
  config.sample_regions = {"WY", "VT"};
  config.executed_days = 20;
  config.deterministic_timing = true;
  return config;
}

WorkflowDesign small_design() {
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT", "MD"};
  return design;
}

FaultSpec paper_plausible_faults(std::uint64_t seed) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = seed;
  spec.node_mtbf_hours = 30.0 * 24.0;  // 30-day MTBF floor from the issue
  spec.node_repair_hours = 2.0;
  spec.wan_failure_prob = 0.02;
  spec.wan_degraded_prob = 0.05;
  spec.db_drop_prob = 0.1;
  return spec;
}

TEST(NightlyResilience, FaultFreeRunsAreIdentical) {
  const WorkflowDesign design = small_design();
  NightlyWorkflow a(small_nightly_config());
  NightlyWorkflow b(small_nightly_config());
  const WorkflowReport report_a = a.run(design);
  const WorkflowReport report_b = b.run(design);
  EXPECT_EQ(report_a, report_b);
  // And the resilience block is all-zero.
  EXPECT_EQ(report_a.resilience, ResilienceSummary{});
}

TEST(NightlyResilience, FaultyRunsAreIdenticalUnderSameSeed) {
  const WorkflowDesign design = small_design();
  NightlyConfig config = small_nightly_config();
  config.faults = paper_plausible_faults(777);
  config.checkpoint.interval_ticks = 60;
  NightlyWorkflow a(config);
  NightlyWorkflow b(config);
  const WorkflowReport report_a = a.run(design);
  const WorkflowReport report_b = b.run(design);
  EXPECT_EQ(report_a, report_b);
}

TEST(NightlyResilience, FaultSeedChangesOnlyFaultDerivedFields) {
  const WorkflowDesign design = small_design();
  NightlyConfig config = small_nightly_config();
  config.faults = paper_plausible_faults(1001);
  NightlyWorkflow a(config);
  config.faults.seed = 2002;  // only the fault seed differs
  NightlyWorkflow b(config);
  const WorkflowReport report_a = a.run(design);
  const WorkflowReport report_b = b.run(design);
  // Work content is identical...
  EXPECT_EQ(report_a.planned_simulations, report_b.planned_simulations);
  EXPECT_EQ(report_a.executed_simulations, report_b.executed_simulations);
  EXPECT_EQ(report_a.config_bytes, report_b.config_bytes);
  EXPECT_EQ(report_a.raw_bytes_measured, report_b.raw_bytes_measured);
  EXPECT_EQ(report_a.summary_bytes_measured, report_b.summary_bytes_measured);
  EXPECT_DOUBLE_EQ(report_a.raw_bytes_full_scale,
                   report_b.raw_bytes_full_scale);
  EXPECT_EQ(report_a.bytes_to_remote, report_b.bytes_to_remote);
  EXPECT_EQ(report_a.bytes_to_home, report_b.bytes_to_home);
  EXPECT_EQ(report_a.db_queries_served, report_b.db_queries_served);
  // ...while the fault weather differs.
  EXPECT_NE(report_a.resilience, report_b.resilience);
}

TEST(NightlyResilience, PaperPlausibleFaultsStillMakeTheDeadline) {
  const WorkflowDesign design = small_design();
  NightlyConfig config = small_nightly_config();
  config.faults = paper_plausible_faults(4242);
  config.checkpoint.interval_ticks = 60;
  NightlyWorkflow workflow(config);
  const WorkflowReport report = workflow.run(design);
  // The (small) night completes: every job ran, deadline met via
  // retries/requeues, and the report exposes the resilience accounting.
  EXPECT_EQ(report.unfinished_jobs, 0u);
  EXPECT_TRUE(report.deadline_met);
  EXPECT_GT(report.deadline_slack_hours, 0.0);
  EXPECT_EQ(report.executed_simulations, 2u);
  EXPECT_GT(report.db_queries_served, 0u);
}

}  // namespace
}  // namespace epi
