#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace epi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 1u);  // state escaped all-zero
}

TEST(Rng, DeriveIsDeterministicAndLabelSensitive) {
  const Rng parent(7);
  Rng child1 = parent.derive({1, 2});
  Rng child2 = parent.derive({1, 2});
  Rng child3 = parent.derive({2, 1});
  EXPECT_EQ(child1.next(), child2.next());
  EXPECT_NE(child1.next(), child3.next());
}

TEST(Rng, DeriveIndependentOfParentConsumption) {
  Rng a(9), b(9);
  b.next();  // consuming the parent must not change derived children
  EXPECT_EQ(a.derive({5}).next(), b.derive({5}).next());
}

TEST(Rng, MixLabelsOrderSensitive) {
  EXPECT_NE(mix_labels(1, {10, 20}), mix_labels(1, {20, 10}));
  EXPECT_EQ(mix_labels(1, {10, 20}), mix_labels(1, {10, 20}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int count : counts) {
    EXPECT_NEAR(count, n / 7, n / 7 / 5);
  }
}

TEST(Rng, UniformIndexOneAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(5.0, 4.0, 1.0, 8.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 8.0);
  }
}

TEST(Rng, TruncatedNormalZeroSigmaClamps) {
  Rng rng(12);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(10.0, 0.0, 0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(-10.0, 0.0, 0.0, 5.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GammaMoments) {
  Rng rng(14);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(3.0, 2.0);  // mean 6, var 12
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 6.0, 0.1);
  EXPECT_NEAR(sum_sq / n - mean * mean, 12.0, 0.6);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 1.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(16);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.07);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonZero) {
  Rng rng(18);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(19);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialMeanSmallN) {
  Rng rng(20);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.binomial(20, 0.3));
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(Rng, BinomialMeanLargeN) {
  Rng rng(21);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto x = rng.binomial(100000, 0.4);
    EXPECT_LE(x, 100000u);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, 40000.0, 50.0);
}

TEST(Rng, DiscretePicksByWeight) {
  Rng rng(22);
  std::array<int, 3> counts{};
  const int n = 90000;
  const std::vector<double> weights = {1.0, 2.0, 6.0};
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0], n / 9, 600);
  EXPECT_NEAR(counts[1], 2 * n / 9, 900);
  EXPECT_NEAR(counts[2], 6 * n / 9, 1200);
}

TEST(Rng, DiscreteSkipsZeroWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.discrete(weights), 1u);
}

TEST(Rng, DiscreteRejectsAllZero) {
  Rng rng(24);
  EXPECT_THROW(rng.discrete(std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW(rng.discrete(std::vector<double>{}), Error);
  EXPECT_THROW(rng.discrete(std::vector<double>{-1.0, 2.0}), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(26);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto x : sample) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(27);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(28);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(29);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.uniform_index(0), Error);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.gamma(0.0, 1.0), Error);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
  EXPECT_THROW(rng.binomial(5, 1.5), Error);
}

// Property sweep: uniform_index is unbiased for a range of n.
class RngIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngIndexSweep, MeanMatchesHalfRange) {
  const std::uint64_t n = GetParam();
  Rng rng(100 + n);
  const int draws = 40000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(rng.uniform_index(n));
  }
  const double expected = (static_cast<double>(n) - 1.0) / 2.0;
  const double tolerance = std::max(0.05, static_cast<double>(n) * 0.02);
  EXPECT_NEAR(sum / draws, expected, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngIndexSweep,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 65537));

}  // namespace
}  // namespace epi
