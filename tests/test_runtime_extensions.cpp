// Tests for the runtime features added on top of the first working
// engine: dynamic edge weights, forced transitions, the contact-tracing
// monitoring program, pulsing-shutdown edge rescheduling, and the nightly
// workflow's person-database accounting.

#include <gtest/gtest.h>

#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"
#include "workflow/nightly.hpp"

namespace epi {
namespace {

const SyntheticRegion& test_region() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;
    config.seed = 99;
    return generate_region(config);
  }();
  return region;
}

SimulationConfig base_config(Tick ticks = 60) {
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 4321;
  config.seeds = {SeedSpec{0, 10, 0}};
  return config;
}

// ----------------------------------------------------- edge weights -------

TEST(EdgeWeights, DefaultScaleIsOne) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  EXPECT_DOUBLE_EQ(sim.edge_weight_scale(0), 1.0);
}

TEST(EdgeWeights, ScalingIsMultiplicative) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  sim.scale_edge_weight(3, 0.5);
  sim.scale_edge_weight(3, 0.4);
  EXPECT_NEAR(sim.edge_weight_scale(3), 0.2, 1e-6);
  EXPECT_DOUBLE_EQ(sim.edge_weight_scale(4), 1.0);  // others untouched
}

TEST(EdgeWeights, ZeroWeightBlocksTransmissionCompletely) {
  CovidParams params;
  params.transmissibility = 0.3;
  const DiseaseModel model = covid_model(params);
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(60));
  for (EdgeIndex e = 0; e < test_region().network.edge_count(); ++e) {
    sim.scale_edge_weight(e, 0.0);
  }
  const SimOutput out = sim.run();
  EXPECT_EQ(out.total_infections, 0u);
}

// ------------------------------------------------- forced transitions ----

TEST(ForceTransition, MovesPersonAndSchedulesProgression) {
  const DiseaseModel model = covid_model();
  SimulationConfig config = base_config(30);
  config.seeds.clear();
  Simulation sim(test_region().network, test_region().population, model,
                 config);
  // Before run(): tick is 0; force one exposure directly.
  sim.force_transition(7, model.state_id(covid_states::kExposed));
  EXPECT_EQ(sim.health(7), model.state_id(covid_states::kExposed));
  const SimOutput out = sim.run();
  // Person 7 progressed onward (at least one more transition).
  std::size_t person7_transitions = 0;
  for (const auto& event : out.transitions) {
    if (event.person == 7) ++person7_transitions;
  }
  EXPECT_GE(person7_transitions, 2u);  // the forced one + progression(s)
}

TEST(ForceTransition, SameStateIsNoOp) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  sim.force_transition(3, model.state_id(covid_states::kSusceptible));
  EXPECT_EQ(sim.health(3), model.state_id(covid_states::kSusceptible));
}

TEST(ForceTransition, RejectsInvalidState) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  EXPECT_THROW(sim.force_transition(3, 999), Error);
}

// --------------------------------------------------- monitoring program ---

TEST(Monitoring, ReviewsAccumulateAndScaleWithDepth) {
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  auto run_with_depth = [&](int depth) {
    auto tracer = std::make_shared<ContactTracing>(
        ContactTracing::Config{depth, 0, 0.6, 0.8, 14, 14});
    run_simulation(test_region().network, test_region().population, model,
                   base_config(60), [&] {
                     return std::vector<std::shared_ptr<Intervention>>{tracer};
                   });
    return tracer->reviews();
  };
  const auto d1_reviews = run_with_depth(1);
  const auto d2_reviews = run_with_depth(2);
  EXPECT_GT(d1_reviews, 0u);
  // Depth 2 reviews second-ring contact lists: several times the work.
  EXPECT_GT(d2_reviews, d1_reviews * 3);
}

TEST(Monitoring, SymptomaticMonitoredPersonIsolatedImmediately) {
  CovidParams params;
  params.transmissibility = 0.3;
  const DiseaseModel model = covid_model(params);
  auto tracer = std::make_shared<ContactTracing>(
      ContactTracing::Config{1, 0, 1.0, 1.0, 14, 14});
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(60));
  sim.add_intervention(tracer);
  sim.run();
  // With full compliance, every symptomatic person whose infector was an
  // index case must be isolated. Weaker, robust check: a symptomatic
  // person at end-of-run who was traced is isolated.
  const HealthStateId symptomatic = model.state_id(covid_states::kSymptomatic);
  std::size_t checked = 0;
  for (PersonId p = 0; p < test_region().population.person_count(); ++p) {
    if (sim.health(p) == symptomatic && sim.is_isolated(p)) ++checked;
  }
  EXPECT_GT(tracer->expansions(), 0u);
  EXPECT_GT(checked, 0u);
}

// --------------------------------------- pulsing shutdown edge semantics --

TEST(PulsingShutdownEdges, EdgesMatchStayHomeSemantics) {
  const DiseaseModel model = covid_model();
  const double compliance = 0.7;
  auto pulse = std::make_shared<PulsingShutdown>(
      PulsingShutdown::Config{0, 10, 10, compliance});
  SimulationConfig config = base_config(5);  // inside the first on-phase
  config.seeds.clear();
  Simulation sim(test_region().network, test_region().population, model,
                 config);
  sim.add_intervention(pulse);
  sim.run();
  const ContactNetwork& net = test_region().network;
  std::size_t closed = 0, open_non_home = 0;
  for (PersonId p = 0; p < net.node_count(); ++p) {
    for (EdgeIndex e = net.in_begin(p); e < net.in_end(p); ++e) {
      const Contact& c = net.contact(e);
      const bool home_edge =
          c.target_activity == static_cast<std::uint8_t>(ActivityType::kHome) &&
          c.source_activity == static_cast<std::uint8_t>(ActivityType::kHome);
      if (home_edge) {
        EXPECT_TRUE(sim.edge_active(e));  // home edges never rescheduled
        continue;
      }
      const bool endpoint_compliant =
          sim.person_coin(p, 0x5053ULL, compliance) ||
          sim.person_coin(c.source, 0x5053ULL, compliance);
      EXPECT_EQ(sim.edge_active(e), !endpoint_compliant)
          << "edge " << e << " inconsistent with pulse semantics";
      (sim.edge_active(e) ? open_non_home : closed) += 1;
    }
  }
  EXPECT_GT(closed, 0u);
  EXPECT_GT(open_non_home, 0u);
}

TEST(PulsingShutdownEdges, OffPhaseReopens) {
  const DiseaseModel model = covid_model();
  auto pulse = std::make_shared<PulsingShutdown>(
      PulsingShutdown::Config{0, 5, 5, 0.8});
  SimulationConfig config = base_config(8);  // ends inside the off-phase
  config.seeds.clear();
  Simulation sim(test_region().network, test_region().population, model,
                 config);
  sim.add_intervention(pulse);
  sim.run();
  for (EdgeIndex e = 0; e < test_region().network.edge_count(); ++e) {
    EXPECT_TRUE(sim.edge_active(e));
  }
}

// ------------------------------------------------ nightly DB accounting ---

TEST(NightlyDb, ServersStartAndServeExecutions) {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 4;
  config.executed_days = 30;
  config.sample_regions = {"WY", "VT"};
  NightlyWorkflow workflow(config);
  WorkflowDesign design = economic_design();
  const WorkflowReport report = workflow.run(design);
  EXPECT_EQ(report.db_servers_started, 2u);  // one per sampled region
  EXPECT_GE(report.db_peak_connections, 1u);
  EXPECT_TRUE(workflow.databases().is_running("WY"));
  EXPECT_FALSE(workflow.databases().is_running("CA"));
}

}  // namespace
}  // namespace epi
