#include "epihiper/scripted.hpp"

#include <gtest/gtest.h>

#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

const SyntheticRegion& test_region() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;
    config.seed = 99;
    return generate_region(config);
  }();
  return region;
}

SimulationConfig base_config(Tick ticks = 60) {
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 4321;
  config.seeds = {SeedSpec{0, 10, 0}};
  return config;
}

std::shared_ptr<ScriptedIntervention> scripted(const std::string& text) {
  return std::make_shared<ScriptedIntervention>(parse_json(text));
}

TEST(Scripted, ParsesAndNames) {
  const auto intervention = scripted(R"({
    "name": "demo",
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 5}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "x", "value": 1}]}]
  })");
  EXPECT_EQ(intervention->name(), "demo");
  EXPECT_EQ(intervention->fired_count(), 0u);
}

TEST(Scripted, MalformedScriptsRejected) {
  EXPECT_THROW(scripted(R"({"actions": []})"), Error);  // no trigger
  EXPECT_THROW(scripted(R"({"trigger": {"op": "nope", "left": {"value": 1},
      "right": {"value": 1}}})"), Error);  // no actions
  EXPECT_THROW(scripted(R"({
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "martians", "operations": []}]})"), Error);
  EXPECT_THROW(scripted(R"({
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "nodes",
                 "operations": [{"set": "active", "value": true}]}]})"),
               Error);  // edge op on node target
  EXPECT_THROW(scripted(R"({
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "nodes",
                 "sampling": {"type": "absolute", "value": 5},
                 "operations": [{"isolate": 14}]}]})"),
               Error);  // unsupported sampling type
}

TEST(Scripted, TimeTriggerFiresOnceWhenOnce) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 10}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "fired", "add": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(30));
  sim.add_intervention(intervention);
  sim.run();
  EXPECT_EQ(intervention->fired_count(), 1u);
  EXPECT_DOUBLE_EQ(sim.variable("fired"), 1.0);
}

TEST(Scripted, RecurringTriggerFiresEveryTick) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 5}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "fired", "add": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(20));
  sim.add_intervention(intervention);
  sim.run();
  EXPECT_EQ(intervention->fired_count(), 15u);  // ticks 5..19
}

TEST(Scripted, StateCountTriggerReactsToEpidemic) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "once": true, "name": "surge",
    "trigger": {"op": ">", "left": {"var": "stateCount", "state": "Recovered"},
                "right": {"value": 20}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "surge_seen", "value": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(80));
  sim.add_intervention(intervention);
  sim.run();
  EXPECT_EQ(intervention->fired_count(), 1u);
  EXPECT_DOUBLE_EQ(sim.variable("surge_seen"), 1.0);
}

TEST(Scripted, BooleanOperatorsCompose) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "trigger": {"op": "and", "args": [
        {"op": ">=", "left": {"var": "time"}, "right": {"value": 5}},
        {"op": "not", "arg":
            {"op": ">", "left": {"var": "time"}, "right": {"value": 7}}}]},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "window", "add": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(20));
  sim.add_intervention(intervention);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.variable("window"), 3.0);  // ticks 5, 6, 7
}

TEST(Scripted, NodeFilterByHealthStateIsolates) {
  CovidParams params;
  params.transmissibility = 0.3;
  const DiseaseModel model = covid_model(params);
  auto intervention = scripted(R"({
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "nodes",
                 "filter": {"healthState": "Symptomatic"},
                 "operations": [{"isolate": 14},
                                {"setTrait": "quarantined", "value": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(50));
  sim.add_intervention(intervention);
  sim.run();
  // Every currently symptomatic person must be isolated and flagged.
  const HealthStateId symptomatic = model.state_id(covid_states::kSymptomatic);
  std::size_t symptomatic_seen = 0;
  for (PersonId p = 0; p < test_region().population.person_count(); ++p) {
    if (sim.health(p) == symptomatic) {
      ++symptomatic_seen;
      EXPECT_TRUE(sim.is_isolated(p));
      EXPECT_EQ(sim.node_trait("quarantined", p), 1);
    }
  }
  EXPECT_GT(symptomatic_seen, 0u);
}

TEST(Scripted, ScriptedVhiMatchesReduction) {
  // A scripted symptomatic-isolation policy suppresses like the built-in.
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  const SimOutput baseline = run_simulation(
      test_region().network, test_region().population, model, base_config(70));
  const SimOutput with_script = run_simulation(
      test_region().network, test_region().population, model, base_config(70),
      [] {
        return std::vector<std::shared_ptr<Intervention>>{scripted(R"({
          "trigger": {"op": ">=", "left": {"var": "time"},
                      "right": {"value": 0}},
          "actions": [{"target": "nodes",
                       "filter": {"healthState": "Symptomatic"},
                       "sampling": {"type": "fraction", "value": 0.9},
                       "operations": [{"isolate": 14}]}]})")};
      });
  EXPECT_LT(with_script.total_infections, baseline.total_infections);
}

TEST(Scripted, EdgeOperationsCloseContext) {
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "edges",
                 "filter": {"context": "work"},
                 "operations": [{"set": "active", "value": false}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(1));
  sim.add_intervention(intervention);
  sim.run();
  // All work-context edges are now inactive; home edges untouched.
  const ContactNetwork& net = test_region().network;
  for (EdgeIndex e = 0; e < net.edge_count(); ++e) {
    const Contact& c = net.contact(e);
    const bool work =
        c.target_activity == static_cast<std::uint8_t>(ActivityType::kWork) ||
        c.source_activity == static_cast<std::uint8_t>(ActivityType::kWork);
    if (work) {
      EXPECT_FALSE(sim.edge_active(e));
    }
    const bool home =
        c.target_activity == static_cast<std::uint8_t>(ActivityType::kHome) &&
        c.source_activity == static_cast<std::uint8_t>(ActivityType::kHome);
    if (home) {
      EXPECT_TRUE(sim.edge_active(e));
    }
  }
}

TEST(Scripted, EdgeSamplingAgreesAcrossDirections) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "edges",
                 "sampling": {"type": "fraction", "value": 0.5},
                 "operations": [{"set": "active", "value": false}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(1));
  sim.add_intervention(intervention);
  sim.run();
  // Both directions of every undirected contact got the same draw.
  const ContactNetwork& net = test_region().network;
  std::map<std::pair<PersonId, PersonId>, std::vector<bool>> by_pair;
  for (PersonId v = 0; v < net.node_count(); ++v) {
    for (EdgeIndex e = net.in_begin(v); e < net.in_end(v); ++e) {
      const PersonId u = net.contact(e).source;
      by_pair[{std::min(u, v), std::max(u, v)}].push_back(sim.edge_active(e));
    }
  }
  std::size_t inactive_pairs = 0;
  for (const auto& [pair, states] : by_pair) {
    for (bool state : states) {
      EXPECT_EQ(state, states.front());
    }
    inactive_pairs += states.front() ? 0 : 1;
  }
  // Roughly half the contacts sampled out.
  const double fraction =
      static_cast<double>(inactive_pairs) / static_cast<double>(by_pair.size());
  EXPECT_NEAR(fraction, 0.5, 0.07);
}

TEST(Scripted, NonsampledOperationsApplyToRemainder) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "nodes",
                 "sampling": {"type": "fraction", "value": 0.3},
                 "operations": [{"setTrait": "grp", "value": 1}],
                 "nonsampledOperations": [{"setTrait": "grp", "value": 2}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(1));
  sim.add_intervention(intervention);
  sim.run();
  std::size_t sampled = 0, rest = 0;
  for (PersonId p = 0; p < test_region().population.person_count(); ++p) {
    const auto value = sim.node_trait("grp", p);
    EXPECT_TRUE(value == 1 || value == 2) << "person " << p;
    (value == 1 ? sampled : rest) += 1;
  }
  EXPECT_NEAR(static_cast<double>(sampled) / (sampled + rest), 0.3, 0.05);
}

TEST(Scripted, DelayedBlockExecutesLater) {
  const DiseaseModel model = covid_model();
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 3}},
    "actions": [{"target": "once", "delay": 5,
                 "operations": [{"setVariable": "done_at", "value": 1}]}]
  })");
  // Record when the variable flips via a second (probe) script.
  auto probe = scripted(R"({
    "trigger": {"op": "==", "left": {"var": "variable", "name": "done_at"},
                "right": {"value": 0}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "zero_ticks", "add": 1}]}]
  })");
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(20));
  sim.add_intervention(intervention);
  sim.add_intervention(probe);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.variable("done_at"), 1.0);
  // done_at flips at tick 8 (trigger at 3 + delay 5); the probe counts
  // ticks 0..7 = 8 zero ticks.
  EXPECT_DOUBLE_EQ(sim.variable("zero_ticks"), 8.0);
}

TEST(Scripted, WeightScalingReducesTransmission) {
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  auto factory = [] {
    return std::vector<std::shared_ptr<Intervention>>{scripted(R"({
      "once": true, "name": "masking",
      "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
      "actions": [{"target": "edges",
                   "operations": [{"scale": "weight", "factor": 0.2}]}]})")};
  };
  const SimOutput baseline = run_simulation(
      test_region().network, test_region().population, model, base_config(70));
  const SimOutput masked =
      run_simulation(test_region().network, test_region().population, model,
                     base_config(70), factory);
  EXPECT_LT(masked.total_infections, baseline.total_infections / 2);
}

TEST(Scripted, ForceTransitionViaHealthStateSet) {
  const DiseaseModel model = covid_model();
  // Initialization-style: expose all persons of age group 4 at tick 0.
  auto intervention = scripted(R"({
    "once": true,
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "nodes",
                 "filter": {"ageGroup": 4, "healthState": "Susceptible"},
                 "operations": [{"set": "healthState", "value": "Exposed"}]}]
  })");
  SimulationConfig config = base_config(1);
  config.seeds.clear();
  Simulation sim(test_region().network, test_region().population, model,
                 config);
  sim.add_intervention(intervention);
  const SimOutput out = sim.run();
  std::size_t seniors = 0;
  for (const auto& event : out.transitions) {
    EXPECT_EQ(event.exit_state, model.state_id(covid_states::kExposed));
    EXPECT_EQ(test_region().population.age_group(event.person),
              AgeGroup::kSenior);
    ++seniors;
  }
  EXPECT_GT(seniors, 0u);
}

TEST(Scripted, MakeInitializationRunsOnceAtGivenTick) {
  const DiseaseModel model = covid_model();
  const Json actions = parse_json(R"([
    {"target": "once", "operations": [{"setVariable": "init", "add": 1}]}
  ])");
  auto init = make_initialization(actions, 4, "boot");
  EXPECT_EQ(init->name(), "boot");
  SimulationConfig config = base_config(10);
  config.seeds.clear();
  Simulation sim(test_region().network, test_region().population, model,
                 config);
  sim.add_intervention(init);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.variable("init"), 1.0);
}

TEST(Scripted, FactoryBuildsScriptedType) {
  const auto intervention = intervention_from_json(parse_json(R"({
    "type": "scripted", "name": "via-factory",
    "trigger": {"op": ">=", "left": {"var": "time"}, "right": {"value": 0}},
    "actions": [{"target": "once",
                 "operations": [{"setVariable": "v", "value": 1}]}]
  })"));
  EXPECT_EQ(intervention->name(), "via-factory");
}

// Scripted interventions must preserve serial/parallel equivalence.
class ScriptedParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ScriptedParallelEquivalence, MatchesSerial) {
  const int ranks = GetParam();
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  const SimulationConfig config = base_config(40);
  auto factory = [] {
    return std::vector<std::shared_ptr<Intervention>>{scripted(R"({
      "name": "combo",
      "trigger": {"op": ">", "left": {"var": "stateCount",
                  "state": "Symptomatic"}, "right": {"value": 3}},
      "actions": [
        {"target": "nodes", "filter": {"healthState": "Symptomatic"},
         "sampling": {"type": "fraction", "value": 0.7},
         "operations": [{"isolate": 10}]},
        {"target": "edges", "filter": {"context": "shopping"}, "delay": 2,
         "operations": [{"set": "active", "value": false}]},
        {"target": "once",
         "operations": [{"setVariable": "firings", "add": 1}]}]})")};
  };
  const SimOutput serial =
      run_simulation(test_region().network, test_region().population, model,
                     config, factory);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  const SimOutput parallel = run_simulation_parallel(
      test_region().network, test_region().population, model, config, parts,
      ranks, factory);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.final_states, serial.final_states);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ScriptedParallelEquivalence,
                         ::testing::Values(2, 4));

}  // namespace
}  // namespace epi
