// Scenario-request service tests: strict env parsing, stable hashing,
// the single-flight artifact cache, the request model, the planner, and
// the service-level determinism contract — byte-identical responses and
// reports at any worker count, warm or cold.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/batch.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "workflow/calibration_cycle.hpp"
#include "workflow/nightly.hpp"

namespace epi::service {
namespace {

// ------------------------------------------------------- env parsing ---

TEST(EnvParse, AcceptsPlainPositiveDecimals) {
  EXPECT_EQ(parse_positive_size("1"), 1u);
  EXPECT_EQ(parse_positive_size("4"), 4u);
  EXPECT_EQ(parse_positive_size("123456"), 123456u);
}

TEST(EnvParse, RejectsEverythingElse) {
  for (const char* bad :
       {"", "0", "-2", "+4", " 4", "4 ", "4x", "x4", "banana", "1e3", "0x10",
        "99999999999999999999999999999"}) {
    EXPECT_FALSE(parse_positive_size(bad).has_value()) << "input: " << bad;
  }
}

TEST(EnvParse, EnvFallbackAndStrictness) {
  // Non-EPI_ prefix: exempt from the registry check, still strictly parsed.
  const char* kVar = "EPISCALE_TEST_KNOB";
  ::unsetenv(kVar);
  EXPECT_EQ(env_positive_size(kVar, 7), 7u);
  ::setenv(kVar, "", 1);
  EXPECT_EQ(env_positive_size(kVar, 7), 7u);
  ::setenv(kVar, "12", 1);
  EXPECT_EQ(env_positive_size(kVar, 7), 12u);
  ::setenv(kVar, "nope", 1);
  try {
    (void)env_positive_size(kVar, 7);
    FAIL() << "malformed env value should throw";
  } catch (const Error& e) {
    // The message must name the variable and the offending text.
    EXPECT_NE(std::string(e.what()).find(kVar), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
  ::unsetenv(kVar);
}

TEST(EnvParse, RegistryGatesEpiPrefixedNames) {
  EXPECT_TRUE(env_registered("EPI_JOBS"));
  EXPECT_TRUE(env_registered("EPI_TRACE"));
  EXPECT_FALSE(env_registered("EPI_TYPO_KNOB"));
  // A registered name reads normally.
  ::setenv("EPI_JOBS", "3", 1);
  EXPECT_EQ(env_positive_size("EPI_JOBS", 1), 3u);
  EXPECT_STREQ(env_raw("EPI_JOBS"), "3");
  ::unsetenv("EPI_JOBS");
  // An unregistered EPI_* name throws, naming the registry.
  try {
    (void)env_raw("EPI_TYPO_KNOB");
    FAIL() << "unregistered EPI_* name should throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("EPI_TYPO_KNOB"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kEnvRegistry"), std::string::npos);
  }
}

TEST(EnvParse, PositiveRealGrammar) {
  EXPECT_EQ(parse_positive_real("2"), 2.0);
  EXPECT_EQ(parse_positive_real("0.25"), 0.25);
  EXPECT_EQ(parse_positive_real("12.5"), 12.5);
  for (const char* bad :
       {"", "0", "0.0", "-1", "+1", " 2", "2 ", "1e3", "0x1p2", "inf", "nan",
        "3.", ".5", "1.2.3", "2s", "banana"}) {
    EXPECT_FALSE(parse_positive_real(bad).has_value()) << "input: " << bad;
  }
}

TEST(EnvParse, CheckTimeoutRejectsMalformedZeroAndNegative) {
  // The watchdog-patience knob must die loudly on misconfiguration: a
  // malformed timeout silently falling back would either mask deadlocks
  // (too large) or flag healthy slow ranks (too small).
  const char* kVar = "EPI_MPILITE_CHECK_TIMEOUT_S";
  ::unsetenv(kVar);
  EXPECT_EQ(env_positive_real(kVar, 30.0), 30.0);
  ::setenv(kVar, "", 1);
  EXPECT_EQ(env_positive_real(kVar, 30.0), 30.0);
  ::setenv(kVar, "0.5", 1);
  EXPECT_EQ(env_positive_real(kVar, 30.0), 0.5);
  for (const char* bad : {"banana", "0", "-2", "1e3", " 2"}) {
    ::setenv(kVar, bad, 1);
    try {
      (void)env_positive_real(kVar, 30.0);
      FAIL() << "value '" << bad << "' should throw";
    } catch (const Error& e) {
      // The message must name the variable and the offending text.
      EXPECT_NE(std::string(e.what()).find(kVar), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos) << e.what();
    }
  }
  ::unsetenv(kVar);
}

TEST(EnvParse, FlagSemantics) {
  ::unsetenv("EPI_MPILITE_CHECK");
  EXPECT_FALSE(env_flag("EPI_MPILITE_CHECK"));
  ::setenv("EPI_MPILITE_CHECK", "", 1);
  EXPECT_FALSE(env_flag("EPI_MPILITE_CHECK"));
  ::setenv("EPI_MPILITE_CHECK", "0", 1);
  EXPECT_FALSE(env_flag("EPI_MPILITE_CHECK"));
  ::setenv("EPI_MPILITE_CHECK", "1", 1);
  EXPECT_TRUE(env_flag("EPI_MPILITE_CHECK"));
  ::unsetenv("EPI_MPILITE_CHECK");
}

// ----------------------------------------------------- stable hashing ---

TEST(StableHash, Fnv1a64KnownAnswers) {
  // Published FNV-1a test vectors — the hash must never drift, or every
  // cached artifact key changes meaning.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(StableHash, Hash128StableAndSensitive) {
  const Hash128 h = hash128("artifact=region|region=VT");
  EXPECT_EQ(h, hash128("artifact=region|region=VT"));
  EXPECT_NE(h, hash128("artifact=region|region=VA"));
  EXPECT_EQ(to_hex(h).size(), 32u);
  EXPECT_EQ(to_hex(h), to_hex(hash128("artifact=region|region=VT")));
}

// ------------------------------------------------------ artifact cache ---

TEST(ArtifactCacheTest, SingleFlightDedupUnderConcurrency) {
  ArtifactCache cache;
  const Hash128 key = hash128("one-key");
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<int> results(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &computes, &results, key, t] {
      auto value = cache.get_or_compute<int>("test", key, [&computes] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_shared<int>(42);
      });
      results[t] = *value;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  for (int r : results) EXPECT_EQ(r, 42);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.classes.at("test").lookups, 8u);
  EXPECT_EQ(stats.classes.at("test").computes, 1u);
  EXPECT_EQ(stats.classes.at("test").hits(), 7u);
}

TEST(ArtifactCacheTest, FailedComputeReleasesSlot) {
  ArtifactCache cache;
  const Hash128 key = hash128("flaky");
  EXPECT_THROW(cache.get_or_compute<int>("test", key,
                                         []() -> std::shared_ptr<int> {
                                           throw std::runtime_error("boom");
                                         }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains(key));
  auto value = cache.get_or_compute<int>(
      "test", key, [] { return std::make_shared<int>(7); });
  EXPECT_EQ(*value, 7);
  EXPECT_EQ(cache.stats().classes.at("test").computes, 2u);
}

TEST(ArtifactCacheTest, EvictionIsDeterministicLru) {
  ArtifactCache cache(2);
  const Hash128 k1 = hash128("k1");
  const Hash128 k2 = hash128("k2");
  const Hash128 k3 = hash128("k3");
  for (const Hash128& k : {k1, k2, k3}) {
    cache.get_or_compute<int>("test", k, [] { return std::make_shared<int>(0); });
  }
  // k2 is never committed, so it ranks oldest and must go first.
  cache.commit_use(k1);
  cache.commit_use(k3);
  EXPECT_EQ(cache.evict_excess(), 1u);
  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Unbounded cache never evicts.
  ArtifactCache unbounded;
  unbounded.get_or_compute<int>("test", k1, [] { return std::make_shared<int>(0); });
  EXPECT_EQ(unbounded.evict_excess(), 0u);
}

TEST(ArtifactCacheTest, HitReturnsByteIdenticalArtifact) {
  ArtifactCache cache;
  const Hash128 key = hash128("serialized-thing");
  const auto compute = [] {
    return std::make_shared<std::string>("response-bytes v1\nvalue=0x1p+3\n");
  };
  auto cold = cache.get_or_compute<std::string>("test", key, compute);
  auto warm = cache.get_or_compute<std::string>("test", key, [] {
    ADD_FAILURE() << "warm lookup must not recompute";
    return std::make_shared<std::string>("wrong");
  });
  EXPECT_EQ(*cold, *warm);
  EXPECT_EQ(cold.get(), warm.get());  // the very same artifact
  EXPECT_EQ(cache.stats().classes.at("test").hits(), 1u);
}

// ------------------------------------------------------ request model ---

ScenarioRequest small_calibration(const std::string& id) {
  ScenarioRequest request;
  request.id = id;
  request.kind = RequestKind::kCalibration;
  request.region = "VT";
  request.scale_denominator = 400.0;
  request.prior_configs = 8;
  request.posterior_configs = 6;
  request.calibration_days = 30;
  request.horizon_days = 10;
  request.prediction_runs = 2;
  request.mcmc_samples = 40;
  request.mcmc_burn_in = 20;
  return request;
}

ScenarioRequest small_nightly(const std::string& id) {
  ScenarioRequest request;
  request.id = id;
  request.kind = RequestKind::kNightly;
  request.design = "economic";
  request.scale_denominator = 8000.0;
  request.sample_executions = 2;
  request.executed_days = 20;
  request.regions = {"WY", "VT"};
  return request;
}

TEST(RequestModel, JsonlRoundTrip) {
  const ScenarioRequest cal = small_calibration("cal-1");
  EXPECT_EQ(parse_request(dump_request(cal)), cal);
  ScenarioRequest nightly = small_nightly("n-1");
  nightly.priority = -3;
  nightly.requester = "ops";
  EXPECT_EQ(parse_request(dump_request(nightly)), nightly);
  // dump(parse(dump)) is byte-stable — the replay log can be re-emitted.
  EXPECT_EQ(dump_request(parse_request(dump_request(cal))), dump_request(cal));
}

TEST(RequestModel, UnknownFieldRejected) {
  EXPECT_THROW(parse_request(R"({"id":"x","bogus_knob":3})"), Error);
  // A nightly knob on a calibration request is a typo, not a default.
  EXPECT_THROW(
      parse_request(R"({"id":"x","kind":"calibration","executed_days":9})"),
      Error);
  EXPECT_THROW(parse_request(R"({"id":"x","kind":"mystery"})"), Error);
}

TEST(RequestModel, LogParsingSkipsCommentsAndBlanks) {
  const std::string log = "# request log\n\n" + dump_request(small_calibration("a")) +
                          "\n# trailer\n" + dump_request(small_nightly("b")) + "\n";
  const auto requests = parse_request_log(log);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].id, "a");
  EXPECT_EQ(requests[1].id, "b");
}

TEST(RequestModel, TailKnobsShareThePriorStageKey) {
  const ScenarioRequest base = small_calibration("base");
  ScenarioRequest tail = base;
  tail.id = "tail";
  tail.requester = "someone-else";
  tail.priority = 9;
  tail.posterior_configs = 12;
  tail.prediction_runs = 3;
  tail.mcmc_samples = 80;
  // Same expensive front half, different tail: one campaign.
  EXPECT_EQ(prior_stage_key_text(base), prior_stage_key_text(tail));
  EXPECT_NE(result_key_text(base), result_key_text(tail));
  // Metadata is not content: id/requester/priority never enter a key.
  ScenarioRequest renamed = base;
  renamed.id = "other";
  renamed.requester = "bob";
  renamed.priority = -5;
  EXPECT_EQ(result_key_text(base), result_key_text(renamed));
  // Prior-stage knobs do change the stage key.
  ScenarioRequest other_seed = base;
  other_seed.seed += 1;
  EXPECT_NE(prior_stage_key_text(base), prior_stage_key_text(other_seed));
}

// ------------------------------------------------------------ planner ---

TEST(Planner, PriorityOrderDedupAndCampaigns) {
  ScenarioRequest low = small_calibration("low");
  ScenarioRequest high = small_calibration("high");
  high.priority = 10;
  ScenarioRequest dup = small_calibration("dup-of-low");  // same config
  ScenarioRequest tail = small_calibration("tail");
  tail.posterior_configs = 12;  // shares low's prior stage
  const std::vector<ScenarioRequest> requests = {low, high, dup, tail};
  const ServicePlan plan = plan_requests(requests);
  // Service order: high first, then arrival order.
  ASSERT_EQ(plan.order.size(), 4u);
  EXPECT_EQ(plan.order[0], 1u);
  EXPECT_EQ(plan.order[1], 0u);
  EXPECT_EQ(plan.order[2], 2u);
  EXPECT_EQ(plan.order[3], 3u);
  // low/high/dup collapse to one unit (identical config); tail is its own.
  ASSERT_EQ(plan.units.size(), 2u);
  EXPECT_EQ(plan.unit_of[0], plan.unit_of[1]);
  EXPECT_EQ(plan.unit_of[0], plan.unit_of[2]);
  EXPECT_NE(plan.unit_of[0], plan.unit_of[3]);
  // The shared unit is owned by the first *served* member: high.
  EXPECT_EQ(plan.units[plan.unit_of[1]].owner, 1u);
  // Both units share one prior stage -> one campaign, one payer.
  ASSERT_EQ(plan.campaigns.size(), 1u);
  EXPECT_EQ(plan.campaigns[0].units.size(), 2u);
  EXPECT_TRUE(plan.units[0].pays_stage);
  EXPECT_FALSE(plan.units[1].pays_stage);
}

// ---------------------------------------------- service determinism ---

std::string small_log() {
  ScenarioRequest high = small_calibration("cal-high");
  high.priority = 5;
  ScenarioRequest tail = small_calibration("cal-tail");
  tail.posterior_configs = 12;
  tail.prediction_runs = 3;
  ScenarioRequest dup = small_calibration("cal-dup");  // config == cal-high
  // Different calibration window: its own prior stage, but the same VT
  // synthetic-population build (region-cache sharing).
  ScenarioRequest window = small_calibration("cal-window");
  window.calibration_days = 35;
  std::string log = "# canned service log\n";
  log += dump_request(high) + "\n";
  log += dump_request(tail) + "\n";
  log += dump_request(dup) + "\n";
  log += dump_request(window) + "\n";
  log += dump_request(small_nightly("nightly-1")) + "\n";
  return log;
}

TEST(ScenarioServiceTest, ReplayIsByteIdenticalAcrossWorkerCounts) {
  const std::string log = small_log();
  ServiceConfig serial;
  serial.jobs = 1;
  serial.logical_workers = 3;
  ScenarioService reference(serial);
  const ServiceOutcome base = reference.replay_log(log);
  ASSERT_EQ(base.responses.size(), 5u);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    ServiceConfig parallel = serial;
    parallel.jobs = jobs;
    ScenarioService service(parallel);
    const ServiceOutcome outcome = service.replay_log(log);
    EXPECT_EQ(outcome.responses, base.responses) << "jobs=" << jobs;
    EXPECT_EQ(serialize(outcome.report), serialize(base.report))
        << "jobs=" << jobs;
  }
  // And across repeated cold runs.
  ScenarioService again(serial);
  const ServiceOutcome repeat = again.replay_log(log);
  EXPECT_EQ(repeat.responses, base.responses);
  EXPECT_EQ(serialize(repeat.report), serialize(base.report));
}

TEST(ScenarioServiceTest, WarmReplayServesCacheHitsByteIdentically) {
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 2;
  ScenarioService service(config);
  const std::string log = small_log();
  const ServiceOutcome cold = service.replay_log(log);
  const ServiceOutcome warm = service.replay_log(log);
  EXPECT_EQ(warm.responses, cold.responses);
  for (const RequestRecord& record : warm.report.records) {
    EXPECT_EQ(record.status, ServeStatus::kCached) << record.id;
    EXPECT_EQ(record.latency_hours, 0.0) << record.id;
  }
  EXPECT_EQ(warm.report.computed_units, 0u);
  EXPECT_EQ(warm.report.cached_requests, warm.report.requests);
}

TEST(ScenarioServiceTest, ReportAccountsDedupSharingAndSavings) {
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 2;
  ScenarioService service(config);
  const ServiceOutcome outcome = service.replay_log(small_log());
  const ServiceReport& report = outcome.report;
  EXPECT_EQ(report.requests, 5u);
  EXPECT_EQ(report.computed_units, 4u);   // high, tail, window, nightly
  EXPECT_EQ(report.deduped_requests, 1u); // cal-dup
  EXPECT_EQ(report.cached_requests, 0u);
  EXPECT_EQ(report.campaigns, 2u);        // shared stage + window's own
  EXPECT_EQ(report.stage_shares, 1u);
  // The tail shared the campaign's prior stage: a cycle-prior hit.
  EXPECT_EQ(report.cache.classes.at("cycle-prior").lookups, 3u);
  EXPECT_EQ(report.cache.classes.at("cycle-prior").computes, 2u);
  // VT's synthetic population is built once and shared.
  EXPECT_GE(report.cache.classes.at("region").hits(), 1u);
  // Dedup + stage sharing means the wave paid less than naive cost.
  EXPECT_LT(report.actual_cost_hours, report.naive_cost_hours);
  EXPECT_GT(report.makespan_hours, 0.0);
  // Responses carry real content: bytes and hashes are consistent.
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    EXPECT_EQ(report.records[i].response_bytes, outcome.responses[i].size());
    EXPECT_EQ(report.records[i].result_hash,
              to_hex(hash128(outcome.responses[i])));
  }
  // Identical configs -> identical response bytes (dedup is invisible in
  // content, only in accounting).
  EXPECT_EQ(outcome.responses[0], outcome.responses[2]);
}

TEST(ScenarioServiceTest, PriorityShapesVirtualLatency) {
  // One logical worker: the high-priority request must finish first even
  // though it arrived last.
  ScenarioRequest first = small_calibration("arrived-first");
  ScenarioRequest urgent = small_calibration("urgent");
  urgent.seed += 1;  // distinct artifact
  urgent.priority = 100;
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 1;
  ScenarioService service(config);
  const ServiceOutcome outcome = service.serve({first, urgent});
  ASSERT_EQ(outcome.report.records.size(), 2u);
  EXPECT_LT(outcome.report.records[1].latency_hours,
            outcome.report.records[0].latency_hours);
}

TEST(ScenarioServiceTest, CacheEvictionBoundsResidentArtifacts) {
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 2;
  config.cache_capacity = 2;
  ScenarioService service(config);
  service.replay_log(small_log());
  EXPECT_LE(service.cache().size(), 2u);
  EXPECT_GT(service.cache().stats().evictions, 0u);
}

// ------------------------------------- engine re-invocation (satellite) ---

TEST(EngineReinvocation, CalibrationCycleBackToBackIsByteIdentical) {
  CalibrationCycleConfig config;
  config.region = "VT";
  config.scale = 1.0 / 400.0;
  config.prior_configs = 8;
  config.posterior_configs = 5;
  config.calibration_days = 25;
  config.horizon_days = 8;
  config.prediction_runs = 2;
  config.mcmc.samples = 30;
  config.mcmc.burn_in = 15;
  const std::string first = serialize(run_calibration_cycle(config));
  const std::string second = serialize(run_calibration_cycle(config));
  EXPECT_EQ(first, second);
  // The split pipeline is byte-identical to the fused engine.
  const CyclePriorStage stage = run_cycle_prior_stage(config);
  EXPECT_EQ(serialize(finish_calibration_cycle(config, stage)), first);
  // A shared stage serves two different tails deterministically.
  CalibrationCycleConfig tail = config;
  tail.posterior_configs = 7;
  const std::string tail_once = serialize(finish_calibration_cycle(tail, stage));
  EXPECT_EQ(serialize(finish_calibration_cycle(tail, stage)), tail_once);
  EXPECT_NE(tail_once, first);
}

TEST(EngineReinvocation, NightlyBackToBackIsByteIdentical) {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 2;
  config.executed_days = 20;
  config.sample_regions = {"WY"};
  config.deterministic_timing = true;
  WorkflowDesign design = economic_design();
  design.regions = {"WY", "VT"};
  NightlyWorkflow first_run(config);
  const std::string first = serialize(first_run.run(design));
  // A fresh engine in the same process (satellite: safe re-invocation).
  NightlyWorkflow second_run(config);
  EXPECT_EQ(serialize(second_run.run(design)), first);
  // Re-running the *same* engine instance is also well-defined: region
  // and DB state persist, the report stays byte-identical.
  EXPECT_EQ(serialize(first_run.run(design)), first);
}

TEST(EngineReinvocation, InjectedRegionSourcePreservesBytes) {
  CalibrationCycleConfig config;
  config.region = "VT";
  config.scale = 1.0 / 400.0;
  config.prior_configs = 8;
  config.posterior_configs = 4;
  config.calibration_days = 20;
  config.horizon_days = 6;
  config.prediction_runs = 1;
  config.mcmc.samples = 20;
  config.mcmc.burn_in = 10;
  const std::string organic = serialize(run_calibration_cycle(config));
  std::size_t injected_calls = 0;
  config.region_source = [&injected_calls](const SynthPopConfig& pop_config) {
    ++injected_calls;
    return std::make_shared<const SyntheticRegion>(
        generate_region(pop_config));
  };
  EXPECT_EQ(serialize(run_calibration_cycle(config)), organic);
  EXPECT_GT(injected_calls, 0u);
}

}  // namespace
}  // namespace epi::service
