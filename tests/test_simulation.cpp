#include "epihiper/simulation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// Shared small region for simulation tests.
const SyntheticRegion& test_region() {
  static const SyntheticRegion region = [] {
    SynthPopConfig config;
    config.region = "DC";
    config.scale = 1.0 / 300.0;  // ~2350 persons
    config.seed = 99;
    return generate_region(config);
  }();
  return region;
}

SimulationConfig base_config(Tick ticks = 60) {
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 1234;
  config.seeds = {SeedSpec{0, 10, 0}};
  return config;
}

TEST(Simulation, SeedsExposeRequestedCount) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(1));
  const SimOutput out = sim.run();
  // Exactly 10 seeded exposures at tick 0 (county 0 is the largest; it has
  // more than 10 residents at this scale).
  std::size_t seeded = 0;
  for (const auto& event : out.transitions) {
    if (event.tick == 0 &&
        event.exit_state == model.state_id(covid_states::kExposed)) {
      ++seeded;
      EXPECT_EQ(event.infector, kNoPerson);
      EXPECT_EQ(test_region().population.person(event.person).county, 0);
    }
  }
  EXPECT_EQ(seeded, 10u);
}

TEST(Simulation, EpidemicGrowsFromSeeds) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(90));
  EXPECT_GT(out.total_infections, 50u);  // outbreak took off
  EXPECT_LT(out.total_infections, test_region().population.person_count());
}

TEST(Simulation, NoSeedsNoEpidemic) {
  const DiseaseModel model = covid_model();
  SimulationConfig config = base_config(30);
  config.seeds.clear();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model, config);
  EXPECT_EQ(out.total_infections, 0u);
  EXPECT_TRUE(out.transitions.empty());
}

TEST(Simulation, ZeroTransmissibilityStopsSpread) {
  CovidParams params;
  params.transmissibility = 0.0;
  const DiseaseModel model = covid_model(params);
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(60));
  EXPECT_EQ(out.total_infections, 0u);  // seeds progress but never transmit
  EXPECT_FALSE(out.transitions.empty());  // seeded persons still progress
}

TEST(Simulation, HigherTransmissibilityMoreInfections) {
  CovidParams lo_params, hi_params;
  lo_params.transmissibility = 0.10;
  hi_params.transmissibility = 0.30;
  const SimOutput lo = run_simulation(test_region().network,
                                      test_region().population,
                                      covid_model(lo_params), base_config(80));
  const SimOutput hi = run_simulation(test_region().network,
                                      test_region().population,
                                      covid_model(hi_params), base_config(80));
  EXPECT_GT(hi.total_infections, lo.total_infections * 2);
}

TEST(Simulation, ReplicatesDiffer) {
  const DiseaseModel model = covid_model();
  SimulationConfig a = base_config(50);
  SimulationConfig b = base_config(50);
  b.replicate = 1;
  const SimOutput out_a = run_simulation(test_region().network,
                                         test_region().population, model, a);
  const SimOutput out_b = run_simulation(test_region().network,
                                         test_region().population, model, b);
  EXPECT_NE(out_a.total_infections, out_b.total_infections);
}

TEST(Simulation, SameConfigBitwiseReproducible) {
  const DiseaseModel model = covid_model();
  const SimOutput a = run_simulation(test_region().network,
                                     test_region().population, model,
                                     base_config(40));
  const SimOutput b = run_simulation(test_region().network,
                                     test_region().population, model,
                                     base_config(40));
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].tick, b.transitions[i].tick);
    EXPECT_EQ(a.transitions[i].person, b.transitions[i].person);
    EXPECT_EQ(a.transitions[i].exit_state, b.transitions[i].exit_state);
    EXPECT_EQ(a.transitions[i].infector, b.transitions[i].infector);
  }
}

TEST(Simulation, TransitionsAreTickOrdered) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(50));
  for (std::size_t i = 1; i < out.transitions.size(); ++i) {
    EXPECT_LE(out.transitions[i - 1].tick, out.transitions[i].tick);
  }
}

TEST(Simulation, InfectorsAreInfectiousContacts) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(60));
  const ContactNetwork& net = test_region().network;
  std::size_t checked = 0;
  for (const auto& event : out.transitions) {
    if (event.infector == kNoPerson) continue;
    // The infector must be a network neighbor (an in-edge source).
    bool neighbor = false;
    for (EdgeIndex e = net.in_begin(event.person); e < net.in_end(event.person);
         ++e) {
      neighbor |= net.contact(e).source == event.infector;
    }
    EXPECT_TRUE(neighbor) << "person " << event.person << " infected by "
                          << event.infector;
    if (++checked > 200) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Simulation, StateCountsConserved) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(60));
  sim.run();
  std::int64_t total = 0;
  for (std::size_t s = 0; s < model.state_count(); ++s) {
    const std::int64_t count =
        sim.global_state_count(static_cast<HealthStateId>(s));
    EXPECT_GE(count, 0);
    total += count;
  }
  EXPECT_EQ(total,
            static_cast<std::int64_t>(test_region().population.person_count()));
}

TEST(Simulation, FinalStatesMatchTransitionLog) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(50));
  std::vector<HealthStateId> replayed(test_region().population.person_count(),
                                      model.initial_state());
  for (const auto& event : out.transitions) {
    replayed[event.person] = event.exit_state;
  }
  ASSERT_EQ(out.final_states.size(), replayed.size());
  for (std::size_t p = 0; p < replayed.size(); ++p) {
    EXPECT_EQ(out.final_states[p], replayed[p]);
  }
}

TEST(Simulation, DeathsAndHospitalizationsOccurInLargeOutbreak) {
  CovidParams params;
  params.transmissibility = 0.35;
  const DiseaseModel model = covid_model(params);
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(120));
  std::set<HealthStateId> seen;
  for (const auto& event : out.transitions) seen.insert(event.exit_state);
  EXPECT_TRUE(seen.count(model.state_id(covid_states::kHospitalized)));
  EXPECT_TRUE(seen.count(model.state_id(covid_states::kDeceased)));
  EXPECT_TRUE(seen.count(model.state_id(covid_states::kRecovered)));
}

TEST(Simulation, MemoryFootprintRecordedAndGrowing) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(60));
  ASSERT_EQ(out.memory_bytes_per_tick.size(), 60u);
  EXPECT_GT(out.memory_bytes_per_tick.front(), 0u);
  // The transition log grows, so late-simulation memory >= early memory.
  EXPECT_GE(out.memory_bytes_per_tick.back(),
            out.memory_bytes_per_tick.front());
}

TEST(Simulation, RecordTransitionsOffStillCountsInfections) {
  const DiseaseModel model = covid_model();
  SimulationConfig config = base_config(60);
  const SimOutput with = run_simulation(test_region().network,
                                        test_region().population, model,
                                        config);
  config.record_transitions = false;
  const SimOutput without = run_simulation(test_region().network,
                                           test_region().population, model,
                                           config);
  EXPECT_TRUE(without.transitions.empty());
  EXPECT_EQ(without.total_infections, with.total_infections);
}

TEST(Simulation, PerTickInfectionsSumToTotal) {
  const DiseaseModel model = covid_model();
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model,
                                       base_config(70));
  std::uint64_t sum = 0;
  for (std::uint64_t x : out.new_infections_per_tick) sum += x;
  EXPECT_EQ(sum, out.total_infections);
}

TEST(Simulation, LateSeedTickHonored) {
  const DiseaseModel model = covid_model();
  SimulationConfig config = base_config(30);
  config.seeds = {SeedSpec{0, 5, 10}};
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model, config);
  for (const auto& event : out.transitions) {
    EXPECT_GE(event.tick, 10);
  }
}

TEST(Simulation, SeedCountExceedingCountyClamps) {
  const DiseaseModel model = covid_model();
  SimulationConfig config = base_config(1);
  // County with the fewest residents: ask for far more seeds than people.
  const std::uint16_t last_county =
      static_cast<std::uint16_t>(test_region().population.county_count() - 1);
  config.seeds = {SeedSpec{last_county, 1000000, 0}};
  const SimOutput out = run_simulation(test_region().network,
                                       test_region().population, model, config);
  EXPECT_LE(out.transitions.size(),
            test_region().population.person_count());
}

TEST(Simulation, ConfigValidation) {
  const DiseaseModel model = covid_model();
  SimulationConfig config;
  config.num_ticks = 0;
  EXPECT_THROW(Simulation(test_region().network, test_region().population,
                          model, config),
               Error);
}

TEST(Simulation, VariablesAndTraits) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  EXPECT_DOUBLE_EQ(sim.variable("x"), 0.0);
  sim.set_variable("x", 2.5);
  EXPECT_DOUBLE_EQ(sim.variable("x"), 2.5);
  EXPECT_EQ(sim.node_trait("tested", 3), 0);
  sim.set_node_trait("tested", 3, 1);
  EXPECT_EQ(sim.node_trait("tested", 3), 1);
  EXPECT_EQ(sim.node_trait("tested", 4), 0);
}

TEST(Simulation, PersonCoinDeterministicAndPurposeSensitive) {
  const DiseaseModel model = covid_model();
  Simulation sim(test_region().network, test_region().population, model,
                 base_config(5));
  const bool a = sim.person_coin(7, 1, 0.5);
  EXPECT_EQ(sim.person_coin(7, 1, 0.5), a);
  // Over many persons, different purposes must decorrelate.
  int differs = 0;
  for (PersonId p = 0; p < 200; ++p) {
    if (sim.person_coin(p, 1, 0.5) != sim.person_coin(p, 2, 0.5)) ++differs;
  }
  EXPECT_GT(differs, 50);
}

// --- Serial/parallel equivalence — the partition-invariance property ----

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, TransitionsIdenticalToSerial) {
  const int ranks = GetParam();
  const DiseaseModel model = covid_model();
  const SimulationConfig config = base_config(40);
  SimOutput serial = run_simulation(test_region().network,
                                    test_region().population, model, config);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  SimOutput parallel =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, config, parts, ranks);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  ASSERT_EQ(parallel.transitions.size(), serial.transitions.size());
  auto key = [](const TransitionEvent& e) {
    return std::tuple(e.tick, e.person, e.exit_state, e.infector);
  };
  std::vector<std::tuple<Tick, PersonId, HealthStateId, PersonId>> s, p;
  for (const auto& e : serial.transitions) s.push_back(key(e));
  for (const auto& e : parallel.transitions) p.push_back(key(e));
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p);
  EXPECT_EQ(parallel.final_states, serial.final_states);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelEquivalence,
                         ::testing::Values(2, 3, 5, 8));

// --- Ghost-delta frontier vs legacy broadcast kernel ---------------------

// Serial A/B: the frontier kernel must reproduce the legacy full-scan
// kernel *byte for byte* — the exact transition sequence (order included),
// not just the multiset. This is the RNG-ordering invariant the frontier
// rewrite is built around.
TEST(ExchangeMode, SerialFrontierMatchesBroadcastByteForByte) {
  const DiseaseModel model = covid_model();
  SimulationConfig ghost = base_config(60);
  ghost.exchange = ExchangeMode::kGhostDelta;
  SimulationConfig bcast = base_config(60);
  bcast.exchange = ExchangeMode::kBroadcast;
  const SimOutput a = run_simulation(test_region().network,
                                     test_region().population, model, ghost);
  const SimOutput b = run_simulation(test_region().network,
                                     test_region().population, model, bcast);
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].tick, b.transitions[i].tick) << "event " << i;
    EXPECT_EQ(a.transitions[i].person, b.transitions[i].person)
        << "event " << i;
    EXPECT_EQ(a.transitions[i].exit_state, b.transitions[i].exit_state)
        << "event " << i;
    EXPECT_EQ(a.transitions[i].infector, b.transitions[i].infector)
        << "event " << i;
  }
  EXPECT_EQ(a.new_infections_per_tick, b.new_infections_per_tick);
  EXPECT_EQ(a.final_states, b.final_states);
  EXPECT_EQ(a.total_infections, b.total_infections);
  // Serial runs exchange nothing.
  EXPECT_EQ(a.ghost_exchange_bytes, 0u);
  EXPECT_EQ(b.ghost_exchange_bytes, 0u);
  // The frontier evaluates strictly fewer edges than the full rescan once
  // any tick has a susceptible person without infectious contacts.
  std::uint64_t frontier_total = 0, rescan_total = 0;
  for (const auto v : a.frontier_edges_per_tick) frontier_total += v;
  for (const auto v : b.frontier_edges_per_tick) rescan_total += v;
  EXPECT_LT(frontier_total, rescan_total);
}

// Parallel A/B on the same partitioning: identical epidemic, and the
// ghost-delta halo moves strictly fewer bytes than broadcasting the full
// infectious set every tick.
TEST(ExchangeMode, GhostDeltaMovesFewerBytesThanBroadcast) {
  const DiseaseModel model = covid_model();
  const Partitioning parts = partition_network(test_region().network, 4);
  SimulationConfig ghost = base_config(40);
  ghost.exchange = ExchangeMode::kGhostDelta;
  SimulationConfig bcast = base_config(40);
  bcast.exchange = ExchangeMode::kBroadcast;
  const SimOutput g =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, ghost, parts, 4);
  const SimOutput b =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, bcast, parts, 4);
  EXPECT_EQ(g.total_infections, b.total_infections);
  EXPECT_EQ(g.final_states, b.final_states);
  EXPECT_EQ(g.new_infections_per_tick, b.new_infections_per_tick);
  EXPECT_GT(g.ghost_exchange_bytes, 0u);
  EXPECT_EQ(b.ghost_exchange_bytes, 0u);
  EXPECT_LT(g.ghost_exchange_bytes, b.communication_bytes);
  EXPECT_LT(g.communication_bytes, b.communication_bytes);
}

// The partition-invariance property for the production (ghost) kernel,
// rank sweep including 1: parallel output matches the serial broadcast
// reference exactly.
class GhostEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GhostEquivalence, MatchesSerialBroadcast) {
  const int ranks = GetParam();
  const DiseaseModel model = covid_model();
  SimulationConfig serial_config = base_config(40);
  serial_config.exchange = ExchangeMode::kBroadcast;
  SimulationConfig ghost_config = base_config(40);
  ghost_config.exchange = ExchangeMode::kGhostDelta;
  const SimOutput serial = run_simulation(
      test_region().network, test_region().population, model, serial_config);
  const Partitioning parts =
      partition_network(test_region().network, static_cast<std::size_t>(ranks));
  const SimOutput parallel =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, ghost_config, parts, ranks);
  EXPECT_EQ(parallel.total_infections, serial.total_infections);
  EXPECT_EQ(parallel.new_infections_per_tick, serial.new_infections_per_tick);
  EXPECT_EQ(parallel.final_states, serial.final_states);
  ASSERT_EQ(parallel.transitions.size(), serial.transitions.size());
  auto key = [](const TransitionEvent& e) {
    return std::tuple(e.tick, e.person, e.exit_state, e.infector);
  };
  std::vector<std::tuple<Tick, PersonId, HealthStateId, PersonId>> s, p;
  for (const auto& e : serial.transitions) s.push_back(key(e));
  for (const auto& e : parallel.transitions) p.push_back(key(e));
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GhostEquivalence,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSim, CommunicationBytesReported) {
  const DiseaseModel model = covid_model();
  const Partitioning parts = partition_network(test_region().network, 4);
  const SimOutput out =
      run_simulation_parallel(test_region().network, test_region().population,
                              model, base_config(20), parts, 4);
  EXPECT_GT(out.communication_bytes, 0u);
}

TEST(ParallelSim, MismatchedPartitionCountRejected) {
  const DiseaseModel model = covid_model();
  const Partitioning parts = partition_network(test_region().network, 3);
  EXPECT_THROW(run_simulation_parallel(test_region().network,
                                       test_region().population, model,
                                       base_config(5), parts, 4),
               Error);
}

}  // namespace
}  // namespace epi
