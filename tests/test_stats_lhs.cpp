#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/lhs.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace epi {
namespace {

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.571428571), 1e-9);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, QuantileBoundsChecked) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), Error);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), Error);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> y_neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, y_neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(x, c), 0.0);
}

TEST(Stats, EcdfMonotoneAndBounded) {
  const Ecdf e = ecdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
  for (std::size_t i = 1; i < e.probs.size(); ++i) {
    EXPECT_GE(e.probs[i], e.probs[i - 1]);
    EXPECT_GE(e.values[i], e.values[i - 1]);
  }
}

TEST(Stats, SummaryFiveNumbers) {
  const Summary s = summarize({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.q25, 3.0);
  EXPECT_DOUBLE_EQ(s.q75, 7.0);
}

TEST(Stats, FormatBytesDecimalUnits) {
  EXPECT_EQ(format_bytes(500), "500.0B");
  EXPECT_EQ(format_bytes(3.0e12), "3.0TB");
  EXPECT_EQ(format_bytes(2.5e9), "2.5GB");
  EXPECT_EQ(format_bytes(200e6), "200.0MB");
}

TEST(Stats, Rmse) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 2, 5};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_THROW(rmse(a, std::vector<double>{1.0}), Error);
}

TEST(Stats, LogTransformFloors) {
  const auto logged = log_transform(std::vector<double>{0.0, 1.0, std::exp(2.0)});
  EXPECT_DOUBLE_EQ(logged[0], 0.0);  // floored at 1
  EXPECT_DOUBLE_EQ(logged[1], 0.0);
  EXPECT_NEAR(logged[2], 2.0, 1e-12);
}

// ---------------------------------------------------------------- LHS ----

TEST(Lhs, StratificationProperty) {
  Rng rng(31);
  const std::size_t n = 40;
  const auto points = latin_hypercube_unit(n, 3, rng);
  ASSERT_EQ(points.size(), n);
  // Exactly one point per stratum per dimension.
  for (std::size_t d = 0; d < 3; ++d) {
    std::set<std::size_t> strata;
    for (const auto& p : points) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LT(p[d], 1.0);
      strata.insert(static_cast<std::size_t>(p[d] * static_cast<double>(n)));
    }
    EXPECT_EQ(strata.size(), n);
  }
}

TEST(Lhs, ScaledRangesRespected) {
  Rng rng(32);
  const std::vector<ParamRange> ranges = {{"a", -1.0, 1.0}, {"b", 10.0, 20.0}};
  const auto points = latin_hypercube(25, ranges, rng);
  for (const auto& p : points) {
    EXPECT_GE(p[0], -1.0);
    EXPECT_LT(p[0], 1.0);
    EXPECT_GE(p[1], 10.0);
    EXPECT_LT(p[1], 20.0);
  }
}

TEST(Lhs, UnitRoundTrip) {
  const std::vector<ParamRange> ranges = {{"a", 2.0, 6.0}};
  const ParamPoint original = {3.0};
  const ParamPoint unit = scale_to_unit(original, ranges);
  EXPECT_DOUBLE_EQ(unit[0], 0.25);
  const ParamPoint back = scale_to_ranges(unit, ranges);
  EXPECT_DOUBLE_EQ(back[0], 3.0);
}

TEST(Lhs, DegenerateRangeThrows) {
  const std::vector<ParamRange> ranges = {{"a", 5.0, 5.0}};
  EXPECT_THROW(scale_to_unit(ParamPoint{5.0}, ranges), Error);
}

TEST(Lhs, InvalidSizesThrow) {
  Rng rng(33);
  EXPECT_THROW(latin_hypercube_unit(0, 2, rng), Error);
  EXPECT_THROW(latin_hypercube_unit(5, 0, rng), Error);
}

}  // namespace
}  // namespace epi
