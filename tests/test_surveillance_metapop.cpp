#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "metapop/metapop.hpp"
#include "surveillance/ground_truth.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// -------------------------------------------------------------- metapop ---

TEST(Metapop, GravityCouplingRowStochastic) {
  const MetapopModel model =
      MetapopModel::with_gravity_coupling({10000, 5000, 2000}, 0.8);
  EXPECT_EQ(model.county_count(), 3u);
}

TEST(Metapop, SingleCountyDegenerateCoupling) {
  const MetapopModel model = MetapopModel::with_gravity_coupling({5000});
  MetapopParams params;
  const auto out =
      model.run_deterministic(params, 30, {MetapopSeed{0, 5.0}});
  EXPECT_EQ(out.new_confirmed.size(), 1u);
}

TEST(Metapop, EpidemicGrowsThenDecays) {
  const MetapopModel model =
      MetapopModel::with_gravity_coupling({100000, 50000});
  MetapopParams params;
  params.beta = 0.5;
  const auto out =
      model.run_deterministic(params, 300, {MetapopSeed{0, 10.0}});
  // Infectious curve rises then falls (epidemic peak).
  const auto& inf = out.infectious;
  const auto peak =
      std::max_element(inf.begin(), inf.end()) - inf.begin();
  EXPECT_GT(peak, 10);
  EXPECT_LT(peak, 250);
  EXPECT_LT(inf.back(), inf[static_cast<std::size_t>(peak)] / 4.0);
}

TEST(Metapop, PopulationConserved) {
  const MetapopModel model =
      MetapopModel::with_gravity_coupling({40000, 20000, 10000});
  MetapopParams params;
  const auto out =
      model.run_deterministic(params, 120, {MetapopSeed{0, 10.0}});
  const double total_pop = 70000.0;
  for (std::size_t d = 0; d < out.susceptible.size(); d += 17) {
    EXPECT_NEAR(out.susceptible[d] + out.exposed[d] + out.infectious[d] +
                    out.recovered[d],
                total_pop, 1e-6);
  }
}

TEST(Metapop, HigherBetaFasterLargerEpidemic) {
  const MetapopModel model = MetapopModel::with_gravity_coupling({100000});
  MetapopParams lo, hi;
  lo.beta = 0.25;
  hi.beta = 0.55;
  const auto out_lo = model.run_deterministic(lo, 200, {MetapopSeed{0, 5.0}});
  const auto out_hi = model.run_deterministic(hi, 200, {MetapopSeed{0, 5.0}});
  EXPECT_GT(out_hi.cumulative_confirmed_total().back(),
            out_lo.cumulative_confirmed_total().back());
}

TEST(Metapop, CommutingSpreadsAcrossCounties) {
  // Seed only county 0; coupling must ignite county 1.
  const MetapopModel model =
      MetapopModel::with_gravity_coupling({50000, 50000}, 0.85);
  MetapopParams params;
  params.beta = 0.5;
  const auto out = model.run_deterministic(params, 150, {MetapopSeed{0, 10.0}});
  EXPECT_GT(out.cumulative_confirmed_county(1).back(), 100.0);
}

TEST(Metapop, InterventionWindowSuppresses) {
  const MetapopModel model = MetapopModel::with_gravity_coupling({200000});
  MetapopParams open, closed;
  open.beta = closed.beta = 0.5;
  closed.intervention_start_day = 20;
  closed.intervention_end_day = 120;
  closed.intervention_effect = 0.4;
  const auto out_open =
      model.run_deterministic(open, 150, {MetapopSeed{0, 10.0}});
  const auto out_closed =
      model.run_deterministic(closed, 150, {MetapopSeed{0, 10.0}});
  EXPECT_LT(out_closed.cumulative_confirmed_total().back(),
            out_open.cumulative_confirmed_total().back() * 0.8);
}

TEST(Metapop, ReportingDelayShiftsConfirmations) {
  const MetapopModel model = MetapopModel::with_gravity_coupling({100000});
  MetapopParams immediate, delayed;
  immediate.reporting_delay_days = 0.0;
  delayed.reporting_delay_days = 10.0;
  const auto out_now =
      model.run_deterministic(immediate, 100, {MetapopSeed{0, 10.0}});
  const auto out_late =
      model.run_deterministic(delayed, 100, {MetapopSeed{0, 10.0}});
  // First day with >= 1 reported case arrives later under delay.
  auto first_case = [](const MetapopOutput& out) {
    const auto total = out.cumulative_confirmed_total();
    for (std::size_t d = 0; d < total.size(); ++d) {
      if (total[d] >= 1.0) return d;
    }
    return total.size();
  };
  EXPECT_GT(first_case(out_late), first_case(out_now));
}

TEST(Metapop, StochasticMatchesDeterministicInExpectation) {
  const MetapopModel model = MetapopModel::with_gravity_coupling({500000});
  MetapopParams params;
  params.beta = 0.45;
  const auto det =
      model.run_deterministic(params, 120, {MetapopSeed{0, 50.0}});
  Rng rng(91);
  double stochastic_sum = 0.0;
  const int replicates = 10;
  for (int i = 0; i < replicates; ++i) {
    const auto stoch =
        model.run_stochastic(params, 120, {MetapopSeed{0, 50.0}}, rng);
    stochastic_sum += stoch.cumulative_confirmed_total().back();
  }
  const double det_total = det.cumulative_confirmed_total().back();
  EXPECT_NEAR(stochastic_sum / replicates, det_total, det_total * 0.15);
}

TEST(Metapop, InvalidConstructionRejected) {
  EXPECT_THROW(MetapopModel({}, {}), Error);
  // Non-stochastic rows.
  EXPECT_THROW(MetapopModel({100.0}, {{0.5}}), Error);
  EXPECT_THROW(MetapopModel({100.0, 100.0}, {{1.0, 0.0}}), Error);
}

// ---------------------------------------------------------- ground truth --

TEST(GroundTruth, CountyStructureMatchesState) {
  GroundTruthConfig config;
  config.days = 120;
  const StateGroundTruth truth = generate_state_ground_truth("VA", config);
  EXPECT_EQ(truth.county_fips.size(), 133u);
  EXPECT_EQ(truth.new_confirmed.size(), 133u);
  for (const auto& county : truth.new_confirmed) {
    EXPECT_EQ(county.size(), 120u);
    for (double x : county) {
      EXPECT_GE(x, 0.0);
      EXPECT_DOUBLE_EQ(x, std::floor(x));  // integer case counts
    }
  }
}

TEST(GroundTruth, CumulativeCurvesMonotone) {
  GroundTruthConfig config;
  config.days = 150;
  const StateGroundTruth truth = generate_state_ground_truth("CA", config);
  const auto state = truth.cumulative_state();
  for (std::size_t d = 1; d < state.size(); ++d) {
    EXPECT_GE(state[d], state[d - 1]);
  }
  EXPECT_GT(state.back(), 1000.0);  // CA sees a real outbreak
  // State curve is the sum of county curves (Fig 13's caption).
  double county_sum = 0.0;
  for (std::size_t c = 0; c < truth.county_fips.size(); ++c) {
    county_sum += truth.cumulative_county(c).back();
  }
  EXPECT_NEAR(county_sum, state.back(), 1e-6);
}

TEST(GroundTruth, DistancingBendsTheCurve) {
  GroundTruthConfig with, without;
  with.days = without.days = 160;
  without.distancing_start_day = 1 << 20;  // never
  const auto bent = generate_state_ground_truth("NY", with);
  const auto unbent = generate_state_ground_truth("NY", without);
  EXPECT_LT(bent.cumulative_state().back(),
            unbent.cumulative_state().back());
}

TEST(GroundTruth, WeekendReportingDip) {
  GroundTruthConfig config;
  config.days = 150;
  config.weekend_reporting_factor = 0.3;
  const auto truth = generate_state_ground_truth("TX", config);
  const auto daily = truth.daily_state();
  // Average weekday vs weekend reporting over the active period.
  double weekday = 0.0, weekend = 0.0;
  int weekday_n = 0, weekend_n = 0;
  for (int d = 60; d < 150; ++d) {
    const int dow = (d + 2) % 7;
    if (dow >= 5) {
      weekend += daily[static_cast<std::size_t>(d)];
      ++weekend_n;
    } else {
      weekday += daily[static_cast<std::size_t>(d)];
      ++weekday_n;
    }
  }
  EXPECT_LT(weekend / weekend_n, weekday / weekday_n);
}

TEST(GroundTruth, DeterministicPerSeed) {
  GroundTruthConfig config;
  config.days = 60;
  const auto a = generate_state_ground_truth("WY", config);
  const auto b = generate_state_ground_truth("WY", config);
  EXPECT_EQ(a.new_confirmed, b.new_confirmed);
  config.seed = 999;
  const auto c = generate_state_ground_truth("WY", config);
  EXPECT_NE(a.new_confirmed, c.new_confirmed);
}

TEST(GroundTruth, CsvWellFormed) {
  GroundTruthConfig config;
  config.days = 10;
  const auto truth = generate_state_ground_truth("DE", config);
  std::ostringstream out;
  write_ground_truth_csv(out, truth);
  const std::string text = out.str();
  EXPECT_NE(text.find("day,fips,new_cases,cum_cases"), std::string::npos);
  // 3 counties x 10 days + header = 31 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 31);
}

TEST(GroundTruth, MostCountiesSeeCasesNationally) {
  // Paper (April 2020): 2772 of ~3140 counties with nonzero counts. Over a
  // 200-day horizon virtually all counties report cases; require > 85%.
  GroundTruthConfig config;
  config.days = 200;
  const auto truths = generate_national_ground_truth(config);
  ASSERT_EQ(truths.size(), 51u);
  std::size_t total_counties = 0;
  for (const auto& t : truths) total_counties += t.county_fips.size();
  EXPECT_NEAR(static_cast<double>(total_counties), 3140.0, 5.0);
  const std::size_t with_cases = counties_with_cases(truths);
  EXPECT_GT(with_cases, total_counties * 85 / 100);
}

}  // namespace
}  // namespace epi
