#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "synthpop/activity.hpp"
#include "synthpop/generator.hpp"
#include "synthpop/ipf.hpp"
#include "synthpop/locations.hpp"
#include "synthpop/population.hpp"
#include "synthpop/us_states.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// ---------------------------------------------------------- us_states ----

TEST(UsStates, FiftyOneRegions) {
  EXPECT_EQ(us_state_count(), 51u);
}

TEST(UsStates, TotalsMatchPublishedFigures) {
  // Paper: "about 300 million nodes" and "3140 counties".
  EXPECT_NEAR(static_cast<double>(total_us_population()), 328e6, 4e6);
  EXPECT_NEAR(static_cast<double>(total_us_counties()), 3140.0, 5.0);
}

TEST(UsStates, LookupByAbbrev) {
  EXPECT_EQ(state_by_abbrev("VA").name, std::string("Virginia"));
  EXPECT_EQ(state_by_abbrev("CA").counties, 58u);
  EXPECT_EQ(state_by_abbrev("DC").counties, 1u);
  EXPECT_THROW(state_by_abbrev("XX"), ConfigError);
}

TEST(UsStates, ExtremesOrdered) {
  // CA is the largest region, WY the smallest (Fig 6's axis extremes).
  for (const StateInfo& s : us_states()) {
    EXPECT_LE(s.population, state_by_abbrev("CA").population);
    EXPECT_GE(s.population, state_by_abbrev("WY").population);
  }
}

TEST(UsStates, HouseholdSizesPlausible) {
  for (const StateInfo& s : us_states()) {
    EXPECT_GT(s.avg_household_size, 2.0) << s.abbrev;
    EXPECT_LT(s.avg_household_size, 3.5) << s.abbrev;
  }
}

// ----------------------------------------------------------------- IPF ----

TEST(Ipf, FitsSimpleTable) {
  Matrix2D seed(2, 2, 1.0);
  const IpfResult result = iterative_proportional_fit(
      seed, {30.0, 70.0}, {40.0, 60.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.fitted.row_sum(0), 30.0, 1e-6);
  EXPECT_NEAR(result.fitted.row_sum(1), 70.0, 1e-6);
  EXPECT_NEAR(result.fitted.col_sum(0), 40.0, 1e-6);
  EXPECT_NEAR(result.fitted.col_sum(1), 60.0, 1e-6);
}

TEST(Ipf, PreservesStructuralZeros) {
  Matrix2D seed(2, 2, 1.0);
  seed.at(0, 0) = 0.0;
  const IpfResult result = iterative_proportional_fit(
      seed, {10.0, 20.0}, {12.0, 18.0});
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.fitted.at(0, 0), 0.0);
}

TEST(Ipf, SeedProportionsShapeInterior) {
  // With uniform marginals, the fitted table inherits the seed's odds.
  Matrix2D seed(2, 2, 1.0);
  seed.at(0, 0) = 4.0;  // strong diagonal preference
  seed.at(1, 1) = 4.0;
  const IpfResult result = iterative_proportional_fit(
      seed, {50.0, 50.0}, {50.0, 50.0});
  EXPECT_GT(result.fitted.at(0, 0), result.fitted.at(0, 1));
  EXPECT_GT(result.fitted.at(1, 1), result.fitted.at(1, 0));
}

TEST(Ipf, MismatchedTotalsThrow) {
  Matrix2D seed(2, 2, 1.0);
  EXPECT_THROW(
      iterative_proportional_fit(seed, {10.0, 10.0}, {30.0, 30.0}), Error);
}

TEST(Ipf, ZeroRowWithDemandThrows) {
  Matrix2D seed(2, 2, 0.0);
  seed.at(1, 0) = 1.0;
  seed.at(1, 1) = 1.0;
  EXPECT_THROW(
      iterative_proportional_fit(seed, {5.0, 5.0}, {5.0, 5.0}), Error);
}

// ----------------------------------------------------------- activity ----

TEST(Activity, SchedulesAreValid) {
  Rng rng(41);
  for (int occ = 0; occ < kOccupationCount; ++occ) {
    for (int trial = 0; trial < 50; ++trial) {
      const WeekSchedule week =
          assign_week_schedule(static_cast<Occupation>(occ), rng);
      for (const DaySchedule& day : week.days) {
        EXPECT_TRUE(schedule_is_valid(day));
      }
    }
  }
}

TEST(Activity, WorkersWorkOnWeekdays) {
  Rng rng(42);
  int with_work = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const WeekSchedule week = assign_week_schedule(Occupation::kWorker, rng);
    bool works = false;
    for (const Activity& a : week.days[kWednesday]) {
      works |= a.type == ActivityType::kWork;
    }
    with_work += works ? 1 : 0;
  }
  EXPECT_GT(with_work, 190);  // virtually all workers work Wednesday
}

TEST(Activity, StudentsAttendSchool) {
  Rng rng(43);
  const WeekSchedule week = assign_week_schedule(Occupation::kStudent, rng);
  bool school = false;
  for (const Activity& a : week.days[0]) {
    school |= a.type == ActivityType::kSchool;
  }
  EXPECT_TRUE(school);
}

TEST(Activity, NoSchoolOnWeekends) {
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const WeekSchedule week = assign_week_schedule(Occupation::kStudent, rng);
    for (int day : {5, 6}) {
      for (const Activity& a : week.days[day]) {
        EXPECT_NE(a.type, ActivityType::kSchool);
      }
    }
  }
}

TEST(Activity, ReligionConcentratesOnSunday) {
  Rng rng(45);
  int sunday = 0, wednesday = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const WeekSchedule week =
        assign_week_schedule(Occupation::kHomeOrRetired, rng);
    for (const Activity& a : week.days[6]) {
      sunday += a.type == ActivityType::kReligion ? 1 : 0;
    }
    for (const Activity& a : week.days[kWednesday]) {
      wednesday += a.type == ActivityType::kReligion ? 1 : 0;
    }
  }
  EXPECT_GT(sunday, 3 * wednesday);
}

TEST(Activity, AwayMinutes) {
  DaySchedule day = {Activity{ActivityType::kWork, 540, 480},
                     Activity{ActivityType::kShopping, 1040, 40}};
  EXPECT_EQ(away_minutes(day), 520u);
  EXPECT_TRUE(schedule_is_valid(day));
}

TEST(Activity, InvalidSchedulesDetected) {
  // Overlap.
  EXPECT_FALSE(schedule_is_valid({Activity{ActivityType::kWork, 100, 100},
                                  Activity{ActivityType::kOther, 150, 50}}));
  // Past midnight.
  EXPECT_FALSE(schedule_is_valid({Activity{ActivityType::kWork, 1400, 100}}));
  // Zero duration.
  EXPECT_FALSE(schedule_is_valid({Activity{ActivityType::kWork, 100, 0}}));
}

// ---------------------------------------------------------- locations ----

TEST(Locations, CountyLayoutSharesSumToOne) {
  Rng rng(46);
  const CountyLayout layout = make_county_layout(state_by_abbrev("VA"), rng);
  EXPECT_EQ(layout.fips.size(), 133u);
  double total = 0.0;
  for (double share : layout.population_share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf: shares decrease.
  for (std::size_t i = 1; i < layout.population_share.size(); ++i) {
    EXPECT_LE(layout.population_share[i], layout.population_share[i - 1]);
  }
}

TEST(Locations, FipsFollowStateCode) {
  Rng rng(47);
  const CountyLayout layout = make_county_layout(state_by_abbrev("VA"), rng);
  for (std::uint32_t fips : layout.fips) {
    EXPECT_EQ(fips / 1000, 51u);
    EXPECT_EQ(fips % 2, 1u);  // odd county codes, like real FIPS
  }
}

TEST(Locations, PoolsSizedByDemand) {
  Rng rng(48);
  const CountyLayout layout = make_county_layout(state_by_abbrev("DC"), rng);
  std::vector<std::array<std::uint64_t, kActivityTypeCount>> demand(1);
  demand[0][static_cast<int>(ActivityType::kWork)] = 200;
  demand[0][static_cast<int>(ActivityType::kSchool)] = 900;
  const LocationModel model(layout, demand, rng);
  EXPECT_EQ(model.pool(0, ActivityType::kWork).size(), 10u);   // 200 / 20
  EXPECT_EQ(model.pool(0, ActivityType::kSchool).size(), 2u);  // 900 / 450
  EXPECT_TRUE(model.pool(0, ActivityType::kReligion).empty());
}

TEST(Locations, AssignFallsBackAcrossCounties) {
  Rng rng(49);
  const CountyLayout layout = make_county_layout(state_by_abbrev("DE"), rng);
  std::vector<std::array<std::uint64_t, kActivityTypeCount>> demand(3);
  demand[0][static_cast<int>(ActivityType::kCollege)] = 100;  // only county 0
  const LocationModel model(layout, demand, rng);
  // A resident of county 2 must still find a college somewhere.
  const LocationId id = model.assign(2, ActivityType::kCollege, rng);
  EXPECT_EQ(model.location(id).type, ActivityType::kCollege);
}

// ---------------------------------------------------------- population ----

TEST(Population, CsvRoundTrip) {
  SynthPopConfig config;
  config.region = "WY";
  config.scale = 1.0 / 2000.0;
  const SyntheticRegion region = generate_region(config);
  std::stringstream buffer;
  region.population.write_csv(buffer);
  const Population restored = Population::read_csv(buffer, "WY");
  EXPECT_EQ(restored.person_count(), region.population.person_count());
  EXPECT_EQ(restored.household_count(), region.population.household_count());
  for (PersonId p = 0; p < restored.person_count(); p += 17) {
    EXPECT_EQ(restored.person(p).age, region.population.person(p).age);
    EXPECT_EQ(restored.person(p).household,
              region.population.person(p).household);
  }
}

TEST(Population, AgeGroupBoundaries) {
  EXPECT_EQ(age_group_of(0), AgeGroup::kPreschool);
  EXPECT_EQ(age_group_of(4), AgeGroup::kPreschool);
  EXPECT_EQ(age_group_of(5), AgeGroup::kSchool);
  EXPECT_EQ(age_group_of(17), AgeGroup::kSchool);
  EXPECT_EQ(age_group_of(18), AgeGroup::kAdult);
  EXPECT_EQ(age_group_of(49), AgeGroup::kAdult);
  EXPECT_EQ(age_group_of(50), AgeGroup::kOlderAdult);
  EXPECT_EQ(age_group_of(64), AgeGroup::kOlderAdult);
  EXPECT_EQ(age_group_of(65), AgeGroup::kSenior);
  EXPECT_THROW(age_group_of(-1), Error);
}

// ----------------------------------------------------------- generator ----

class GeneratedRegion : public ::testing::Test {
 protected:
  static const SyntheticRegion& region() {
    static const SyntheticRegion instance = [] {
      SynthPopConfig config;
      config.region = "VT";
      config.scale = 1.0 / 1000.0;
      config.seed = 77;
      return generate_region(config);
    }();
    return instance;
  }
};

TEST_F(GeneratedRegion, PersonCountTracksScale) {
  const double expected =
      static_cast<double>(state_by_abbrev("VT").population) / 1000.0;
  EXPECT_NEAR(static_cast<double>(region().population.person_count()),
              expected, expected * 0.02);
}

TEST_F(GeneratedRegion, HouseholdsAreContiguousAndSized) {
  const Population& pop = region().population;
  double total_size = 0.0;
  for (std::size_t h = 0; h < pop.household_count(); ++h) {
    const Household& hh = pop.household(h);
    EXPECT_GE(hh.size, 1);
    EXPECT_LE(hh.size, 7);
    total_size += hh.size;
    for (PersonId p = hh.first_person; p < hh.first_person + hh.size; ++p) {
      EXPECT_EQ(pop.person(p).household, h);
      EXPECT_EQ(pop.person(p).county, hh.county);
    }
  }
  const double mean_size =
      total_size / static_cast<double>(pop.household_count());
  EXPECT_NEAR(mean_size, state_by_abbrev("VT").avg_household_size, 0.35);
}

TEST_F(GeneratedRegion, ChildrenLiveWithAdults) {
  const Population& pop = region().population;
  for (std::size_t h = 0; h < pop.household_count(); ++h) {
    const Household& hh = pop.household(h);
    bool has_child = false, has_adult = false;
    for (PersonId p = hh.first_person; p < hh.first_person + hh.size; ++p) {
      const auto group = pop.age_group(p);
      has_child |= group == AgeGroup::kPreschool || group == AgeGroup::kSchool;
      has_adult |= group == AgeGroup::kAdult ||
                   group == AgeGroup::kOlderAdult || group == AgeGroup::kSenior;
    }
    if (has_child) EXPECT_TRUE(has_adult) << "household " << h;
  }
}

TEST_F(GeneratedRegion, AgeDistributionMatchesTargets) {
  const Population& pop = region().population;
  std::array<double, kAgeGroupCount> counts{};
  for (PersonId p = 0; p < pop.person_count(); ++p) {
    counts[static_cast<std::size_t>(pop.age_group(p))] += 1.0;
  }
  const auto target = us_age_distribution();
  for (int g = 0; g < kAgeGroupCount; ++g) {
    EXPECT_NEAR(counts[g] / pop.person_count(), target[g], 0.05) << "group " << g;
  }
}

TEST_F(GeneratedRegion, NetworkCoversPopulation) {
  EXPECT_EQ(region().network.node_count(), region().population.person_count());
  const NetworkStats stats = compute_stats(region().network);
  // Realistic density: mean contact degree in the 8-40 band.
  EXPECT_GT(stats.mean_degree, 8.0);
  EXPECT_LT(stats.mean_degree, 40.0);
  // Nearly everyone has at least a household contact.
  EXPECT_LT(static_cast<double>(stats.isolated_nodes),
            0.2 * static_cast<double>(stats.nodes));
}

TEST_F(GeneratedRegion, AllContextsPresent) {
  const NetworkStats stats = compute_stats(region().network);
  EXPECT_GT(stats.edges_by_context[static_cast<int>(ActivityType::kHome)], 0u);
  EXPECT_GT(stats.edges_by_context[static_cast<int>(ActivityType::kWork)], 0u);
  EXPECT_GT(stats.edges_by_context[static_cast<int>(ActivityType::kSchool)], 0u);
  EXPECT_GT(stats.edges_by_context[static_cast<int>(ActivityType::kShopping)],
            0u);
}

TEST_F(GeneratedRegion, DeterministicForSameSeed) {
  SynthPopConfig config;
  config.region = "VT";
  config.scale = 1.0 / 1000.0;
  config.seed = 77;
  const SyntheticRegion again = generate_region(config);
  EXPECT_EQ(again.network.content_hash(), region().network.content_hash());
  EXPECT_EQ(again.population.person_count(),
            region().population.person_count());
}

TEST(Generator, DifferentSeedsDifferentNetworks) {
  SynthPopConfig a, b;
  a.region = b.region = "DC";
  a.scale = b.scale = 1.0 / 2000.0;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate_region(a).network.content_hash(),
            generate_region(b).network.content_hash());
}

TEST(Generator, EdgeToNodeRatioStableAcrossStates) {
  // Fig 6's shape: edges scale linearly with nodes, so the contacts/person
  // ratio is roughly state-independent. At small generation scales the
  // Zipf tail of tiny counties depresses sub-location sizes, so we allow
  // a generous band: all ratios within a factor of 2 of each other.
  std::vector<double> ratios;
  for (const char* abbrev : {"WY", "VT", "DE", "RI"}) {
    SynthPopConfig config;
    config.region = abbrev;
    config.scale = 1.0 / 500.0;
    const SyntheticRegion region = generate_region(config);
    ratios.push_back(
        static_cast<double>(region.network.contact_count()) /
        static_cast<double>(region.population.person_count()));
  }
  for (double r : ratios) {
    EXPECT_GT(r, ratios[0] / 2.0);
    EXPECT_LT(r, ratios[0] * 2.0);
  }
}

TEST(Generator, WeekLongNetworkDenserThanProjection) {
  SynthPopConfig day_config;
  day_config.region = "VT";
  day_config.scale = 1.0 / 500.0;
  SynthPopConfig week_config = day_config;
  week_config.week_long = true;
  const SyntheticRegion day = generate_region(day_config);
  const SyntheticRegion week = generate_region(week_config);
  EXPECT_EQ(week.population.person_count(), day.population.person_count());
  // The week-long G holds several days of contacts: expect 3-8x the
  // Wednesday projection (weekends are lighter than weekdays).
  const double ratio = static_cast<double>(week.network.contact_count()) /
                       static_cast<double>(day.network.contact_count());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 8.0);
  // Week-long mean contacts/person approaches the production ~26.
  const double per_person =
      static_cast<double>(week.network.contact_count()) /
      static_cast<double>(week.population.person_count());
  EXPECT_GT(per_person, 12.0);
  EXPECT_LT(per_person, 45.0);
}

TEST(Generator, RejectsBadScale) {
  SynthPopConfig config;
  config.scale = 0.0;
  EXPECT_THROW(generate_region(config), Error);
  config.scale = 1.5;
  EXPECT_THROW(generate_region(config), Error);
}

}  // namespace
}  // namespace epi
