#include <gtest/gtest.h>

#include <set>

#include "workflow/cell_config.hpp"
#include "workflow/designs.hpp"
#include "workflow/nightly.hpp"
#include "util/error.hpp"

namespace epi {
namespace {

// ---------------------------------------------------------- cell config ---

CellConfig sample_cell() {
  CellConfig config;
  config.region = "VA";
  config.cell = 7;
  config.replicates = 5;
  config.num_days = 200;
  config.seed = 42;
  config.disease.transmissibility = 0.21;
  config.disease.symptomatic_fraction = 0.6;
  config.interventions = {
      parse_json(R"({"type": "VHI", "compliance": 0.8})"),
      parse_json(R"({"type": "SH", "start": 20, "end": 80})")};
  config.seeds = {SeedSpec{0, 5, 0}, SeedSpec{1, 3, 2}};
  return config;
}

TEST(CellConfig, JsonRoundTrip) {
  const CellConfig original = sample_cell();
  const CellConfig restored = CellConfig::from_json(original.to_json());
  EXPECT_EQ(restored.region, original.region);
  EXPECT_EQ(restored.cell, original.cell);
  EXPECT_EQ(restored.replicates, original.replicates);
  EXPECT_EQ(restored.num_days, original.num_days);
  EXPECT_EQ(restored.seed, original.seed);
  EXPECT_DOUBLE_EQ(restored.disease.transmissibility, 0.21);
  EXPECT_DOUBLE_EQ(restored.disease.symptomatic_fraction, 0.6);
  EXPECT_EQ(restored.interventions.size(), 2u);
  ASSERT_EQ(restored.seeds.size(), 2u);
  EXPECT_EQ(restored.seeds[1].county, 1);
  EXPECT_EQ(restored.seeds[1].tick, 2);
}

TEST(CellConfig, ByteSizePositiveAndStable) {
  const CellConfig config = sample_cell();
  EXPECT_GT(config.byte_size(), 100u);
  EXPECT_EQ(config.byte_size(), config.byte_size());
}

TEST(CellConfig, MakeInterventionsMaterializes) {
  const CellConfig config = sample_cell();
  const auto interventions = config.make_interventions();
  ASSERT_EQ(interventions.size(), 2u);
  EXPECT_EQ(interventions[0]->name(), "VHI");
  EXPECT_EQ(interventions[1]->name(), "SH");
}

TEST(CellConfig, SimConfigPerReplicate) {
  const CellConfig config = sample_cell();
  const SimulationConfig sim0 = config.make_sim_config(0);
  const SimulationConfig sim4 = config.make_sim_config(4);
  EXPECT_EQ(sim0.seed, sim4.seed);          // shared stream root
  EXPECT_NE(sim0.replicate, sim4.replicate);  // distinguished by replicate
  EXPECT_EQ(sim0.num_ticks, 200);
  EXPECT_THROW(config.make_sim_config(5), Error);
}

// -------------------------------------------------------------- designs ---

TEST(Designs, TableIScale) {
  EXPECT_EQ(economic_design().simulations(), 9180u);
  EXPECT_EQ(prediction_design().simulations(), 9180u);
  EXPECT_EQ(calibration_design().simulations(), 15300u);
  EXPECT_EQ(all_regions().size(), 51u);
}

TEST(Designs, EconomicFactorialTwelveCells) {
  const auto configs = make_cell_configs(economic_design(), "VA", 1);
  EXPECT_EQ(configs.size(), 12u);
  // All cells distinct in their intervention parameterization.
  std::set<std::string> serialized;
  for (const auto& config : configs) {
    serialized.insert(config.to_json().dump());
    EXPECT_EQ(config.replicates, 15u);
    EXPECT_EQ(config.interventions.size(), 3u);  // VHI + SC + SH
  }
  EXPECT_EQ(serialized.size(), 12u);
}

TEST(Designs, PredictionCellsIncludeReopeningAndTracing) {
  const auto configs = make_cell_configs(prediction_design(), "WY", 1);
  EXPECT_EQ(configs.size(), 12u);
  for (const auto& config : configs) {
    bool has_ro = false, has_ct = false;
    for (const Json& spec : config.interventions) {
      const std::string type = spec.at("type").as_string();
      has_ro |= type == "RO";
      has_ct |= type == "D1CT";
    }
    EXPECT_TRUE(has_ro);
    EXPECT_TRUE(has_ct);
  }
}

TEST(Designs, CalibrationCellsSpanParameterSpace) {
  WorkflowDesign design = calibration_design();
  design.cells = 50;  // keep the test quick
  const auto configs = make_cell_configs(design, "VT", 7);
  EXPECT_EQ(configs.size(), 50u);
  const auto ranges = calibration_parameter_ranges();
  double min_tau = 1e9, max_tau = -1e9;
  for (const auto& config : configs) {
    min_tau = std::min(min_tau, config.disease.transmissibility);
    max_tau = std::max(max_tau, config.disease.transmissibility);
    EXPECT_GE(config.disease.transmissibility, ranges[0].lo);
    EXPECT_LE(config.disease.transmissibility, ranges[0].hi);
  }
  // LHS covers most of the TAU range.
  EXPECT_LT(min_tau, ranges[0].lo + 0.03);
  EXPECT_GT(max_tau, ranges[0].hi - 0.03);
}

TEST(Designs, CellSeedsDifferByCell) {
  const auto configs = make_cell_configs(economic_design(), "VA", 1);
  std::set<std::uint64_t> seeds;
  for (const auto& config : configs) seeds.insert(config.seed);
  EXPECT_EQ(seeds.size(), configs.size());
}

TEST(Designs, CalibrationPointValidation) {
  EXPECT_THROW(
      cell_from_calibration_point("VA", 0, {0.2, 0.5}, 1, 100, 1),
      Error);  // needs 4 parameters
  const CellConfig config = cell_from_calibration_point(
      "VA", 3, {0.2, 0.5, 0.6, 0.7}, 2, 100, 1);
  EXPECT_DOUBLE_EQ(config.disease.transmissibility, 0.2);
  EXPECT_DOUBLE_EQ(config.disease.symptomatic_fraction, 0.5);
  EXPECT_EQ(config.interventions.size(), 3u);
}

TEST(Designs, UnknownDesignRejected) {
  WorkflowDesign design;
  design.name = "mystery";
  design.cells = 1;
  EXPECT_THROW(make_cell_configs(design, "VA", 1), ConfigError);
}

// -------------------------------------------------------------- nightly ---

TEST(Nightly, EconomicWorkflowEndToEnd) {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 4;
  config.executed_days = 60;
  NightlyWorkflow workflow(config);
  const WorkflowReport report = workflow.run(economic_design());

  EXPECT_EQ(report.planned_simulations, 9180u);
  EXPECT_EQ(report.executed_simulations, 4u);
  EXPECT_GT(report.config_bytes, 100'000u);  // 51 regions x 12 cells of JSON
  EXPECT_GT(report.raw_bytes_measured, 0u);
  EXPECT_GT(report.summary_bytes_measured, 0u);

  // Schedule lands inside the nightly window with high utilization.
  EXPECT_LE(report.schedule_makespan_hours, 10.0);
  EXPECT_GT(report.utilization, 0.7);
  EXPECT_EQ(report.unfinished_jobs, 0u);

  // Full-scale extrapolations in the paper's Table I regime: raw output
  // O(TB), summaries O(GB).
  EXPECT_GT(report.raw_bytes_full_scale, 1e11);   // > 100 GB
  EXPECT_LT(report.raw_bytes_full_scale, 1e14);   // < 100 TB
  EXPECT_GT(report.summary_bytes_full_scale, 1e8);  // > 100 MB
  EXPECT_LT(report.summary_bytes_full_scale, 1e11); // < 100 GB

  // Timeline covers all phases in order.
  ASSERT_GE(report.timeline.size(), 6u);
  for (std::size_t i = 1; i < report.timeline.size(); ++i) {
    EXPECT_GE(report.timeline[i].start_hours,
              report.timeline[i - 1].start_hours);
  }
  EXPECT_GT(report.total_elapsed_hours, 0.0);
  EXPECT_GT(report.bytes_to_remote, 0u);
  EXPECT_GT(report.bytes_to_home, 0u);
}

TEST(Nightly, RegionCacheReturnsSameInstance) {
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  NightlyWorkflow workflow(config);
  const SyntheticRegion& a = workflow.region("WY");
  const SyntheticRegion& b = workflow.region("WY");
  EXPECT_EQ(&a, &b);
}

TEST(Nightly, EmptySamplePoolRejectedClearly) {
  // A design with no regions (and no sample_regions fallback) used to
  // divide by zero when picking sample executions; now it fails with a
  // diagnosable error before Phase 4b.
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 4;
  config.sample_regions = {};
  WorkflowDesign design = economic_design();
  design.regions = {};
  NightlyWorkflow workflow(config);
  EXPECT_THROW(workflow.run(design), Error);

  // With zero sample executions requested, an empty pool is fine: the
  // schedule model still runs, nothing is executed for real.
  NightlyConfig none = config;
  none.sample_executions = 0;
  NightlyWorkflow skip(none);
  const WorkflowReport report = skip.run(design);
  EXPECT_EQ(report.executed_simulations, 0u);
}

TEST(Nightly, InvalidScaleRejected) {
  NightlyConfig config;
  config.scale = 0.0;
  EXPECT_THROW(NightlyWorkflow{config}, Error);
}

}  // namespace
}  // namespace epi
