#include "epilint/epilint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "epilint/lexer.hpp"
#include "epilint/parse.hpp"
#include "epilint/rules.hpp"

namespace fs = std::filesystem;

namespace epilint {
namespace {

bool is_source(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

/// Lexes files once and hands out stable pointers.
class FileCache {
 public:
  const LexedFile* get(const std::string& path) {
    auto it = cache_.find(path);
    if (it != cache_.end()) return it->second.get();
    auto lexed = std::make_unique<LexedFile>(lex_file(path));
    const LexedFile* raw = lexed.get();
    cache_.emplace(path, std::move(lexed));
    return raw;
  }

 private:
  std::map<std::string, std::unique_ptr<LexedFile>> cache_;
};

/// Resolves an `#include "target"` against the includer's directory and
/// the configured include roots. Empty string when not found — system
/// headers and unresolvable targets are simply outside the unit.
std::string resolve_include(const std::string& target,
                            const std::string& includer,
                            const std::vector<std::string>& include_dirs) {
  const fs::path sibling = fs::path(includer).parent_path() / target;
  std::error_code ec;
  if (fs::is_regular_file(sibling, ec)) return sibling.lexically_normal().string();
  for (const std::string& dir : include_dirs) {
    const fs::path candidate = fs::path(dir) / target;
    if (fs::is_regular_file(candidate, ec)) {
      return candidate.lexically_normal().string();
    }
  }
  return "";
}

/// Adds `path` and its transitive project includes to `unit.files`.
void add_with_includes(const std::string& path,
                       const std::vector<std::string>& include_dirs,
                       FileCache* cache, std::set<std::string>* visited,
                       Unit* unit) {
  if (!visited->insert(path).second) return;
  const LexedFile* file = cache->get(path);
  unit->files.push_back(file);
  for (const std::string& target : file->includes) {
    const std::string resolved = resolve_include(target, path, include_dirs);
    if (!resolved.empty()) {
      add_with_includes(resolved, include_dirs, cache, visited, unit);
    }
  }
}

bool waived(const LexedFile& file, const Finding& finding) {
  // A waiver covers its own line and the next line that carries code, so a
  // multi-line waiver comment still suppresses the statement below it.
  const auto line_has_code = [&file](int line) {
    const auto it = std::lower_bound(
        file.tokens.begin(), file.tokens.end(), line,
        [](const Token& tok, int l) { return tok.line < l; });
    return it != file.tokens.end() && it->line == line;
  };
  const auto allows = [&file, &finding](int line) {
    const auto it = file.waivers.find(line);
    return it != file.waivers.end() && it->second.count(finding.rule) != 0;
  };
  if (allows(finding.line)) return true;
  for (int line = finding.line - 1; line >= 1; --line) {
    if (allows(line)) return true;
    // A waiver on a code line covers only itself and the line below; stop at
    // the first code line above the finding.
    if (line_has_code(line)) break;
  }
  return false;
}

void json_escape(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "banned-random",     "wall-clock",
      "unordered-iter",    "determinism-taint",
      "mpilite-tag-mismatch", "mpilite-divergent-collective",
      "mpilite-runtime-entry", "env-getenv",
      "env-registry",      "io-raw-stream",
      "io-nonhex-float",   "bad-waiver"};
  return rules;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  std::set<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          files.insert(entry.path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.insert(fs::path(path).lexically_normal().string());
    } else {
      throw std::runtime_error("epilint: no such file or directory: " + path);
    }
  }
  return {files.begin(), files.end()};
}

std::vector<Finding> analyze(const std::vector<std::string>& files,
                             const Options& options) {
  FileCache cache;
  const std::set<std::string> input(files.begin(), files.end());

  std::vector<std::string> include_dirs = options.include_dirs;
  if (include_dirs.empty()) {
    std::set<std::string> dirs;
    for (const std::string& f : files) {
      dirs.insert(fs::path(f).parent_path().string());
    }
    include_dirs.assign(dirs.begin(), dirs.end());
  }

  std::set<std::string> env_registry;
  if (!options.env_registry_path.empty()) {
    for (const EnvVar& var : parse_env_registry(options.env_registry_path)) {
      env_registry.insert(var.name);
    }
  }

  // Assemble analysis units: each .cpp with its stem-paired header as
  // primary files; each unpaired .hpp as its own unit.
  std::vector<Unit> units;
  for (const std::string& path : files) {
    if (fs::path(path).extension() != ".cpp") continue;
    Unit unit;
    std::set<std::string> visited;
    add_with_includes(path, include_dirs, &cache, &visited, &unit);
    unit.primary.insert(cache.get(path));
    const std::string paired =
        (fs::path(path).parent_path() / fs::path(path).stem()).string() +
        ".hpp";
    std::error_code ec;
    if (fs::is_regular_file(paired, ec)) {
      const std::string normal = fs::path(paired).lexically_normal().string();
      add_with_includes(normal, include_dirs, &cache, &visited, &unit);
      unit.primary.insert(cache.get(normal));
    }
    units.push_back(std::move(unit));
  }
  for (const std::string& path : files) {
    if (fs::path(path).extension() != ".hpp") continue;
    const std::string paired =
        (fs::path(path).parent_path() / fs::path(path).stem()).string() +
        ".cpp";
    if (input.count(fs::path(paired).lexically_normal().string())) continue;
    Unit unit;
    std::set<std::string> visited;
    add_with_includes(path, include_dirs, &cache, &visited, &unit);
    unit.primary.insert(cache.get(path));
    units.push_back(std::move(unit));
  }

  std::vector<Finding> findings;
  for (Unit& unit : units) {
    unit.index = parse_unit(unit.files);
    run_rules(unit, env_registry, &findings);
  }

  // Waivers naming an unknown rule are findings themselves — a typo'd
  // waiver would otherwise silently fail to suppress anything (or worse,
  // appear to the reader to suppress something it does not).
  for (const std::string& path : files) {
    const LexedFile* file = cache.get(path);
    for (const auto& [line, rules] : file->waivers) {
      for (const std::string& rule : rules) {
        if (!known_rules().count(rule)) {
          findings.push_back(Finding{
              "bad-waiver", file->path, line,
              line >= 1 && static_cast<std::size_t>(line) <= file->lines.size()
                  ? file->lines[line - 1]
                  : "",
              "waiver names unknown rule '" + rule + "'"});
        }
      }
    }
  }

  // Inline waivers.
  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    if (f.rule != "bad-waiver" && waived(*cache.get(f.file), f)) continue;
    kept.push_back(f);
  }

  // Sort + de-duplicate (a site can be reported via several paths).
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule;
                         }),
             kept.end());
  return kept;
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"rule\": \"";
    json_escape(f.rule, &out);
    out += "\", \"file\": \"";
    json_escape(f.file, &out);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"snippet\": \"";
    json_escape(f.snippet, &out);
    out += "\", \"message\": \"";
    json_escape(f.message, &out);
    out += "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::string out;
  std::map<std::string, int> counts;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
    if (!f.snippet.empty()) out += "    " + f.snippet + "\n";
    ++counts[f.rule];
  }
  if (findings.empty()) {
    out += "epilint: clean\n";
  } else {
    out += "epilint: " + std::to_string(findings.size()) + " finding(s)\n";
    for (const auto& [rule, count] : counts) {
      out += "  " + rule + ": " + std::to_string(count) + "\n";
    }
  }
  return out;
}

std::set<std::string> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("epilint: cannot read baseline " + path);
  std::set<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(b, e - b + 1));
  }
  return entries;
}

std::string baseline_entry(const Finding& finding) {
  return finding.rule + "|" + finding.file + "|" + std::to_string(finding.line);
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::set<std::string>& baseline) {
  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    if (baseline.count(baseline_entry(f))) continue;
    if (baseline.count(f.rule + "|" + f.file)) continue;
    kept.push_back(f);
  }
  return kept;
}

std::vector<EnvVar> parse_env_registry(const std::string& header_path) {
  const LexedFile file = lex_file(header_path);
  const std::vector<Token>& toks = file.tokens;
  std::vector<EnvVar> registry;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == Tok::kIdent && toks[i].text == "kEnvRegistry")) {
      continue;
    }
    // Find the initializer's outer '{' and walk its `{ "NAME", "summary" }`
    // entries (adjacent string literals in the summary concatenate).
    std::size_t open = i + 1;
    while (open < toks.size() && !(toks[open].kind == Tok::kPunct &&
                                   toks[open].text == "{")) {
      if (toks[open].kind == Tok::kPunct && toks[open].text == ";") break;
      ++open;
    }
    if (open >= toks.size() || toks[open].text != "{") break;
    int depth = 0;
    EnvVar current;
    bool in_entry = false;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (toks[j].kind == Tok::kPunct && toks[j].text == "{") {
        ++depth;
        if (depth == 2) {
          in_entry = true;
          current = EnvVar{};
        }
        continue;
      }
      if (toks[j].kind == Tok::kPunct && toks[j].text == "}") {
        if (depth == 2 && in_entry && !current.name.empty()) {
          registry.push_back(current);
        }
        in_entry = false;
        if (--depth == 0) break;
        continue;
      }
      if (in_entry && toks[j].kind == Tok::kString) {
        if (current.name.empty()) {
          current.name = toks[j].text;
        } else {
          current.summary += toks[j].text;
        }
      }
    }
    break;
  }
  return registry;
}

std::string env_table_markdown(const std::vector<EnvVar>& registry) {
  std::string out = "| Variable | Meaning |\n|---|---|\n";
  for (const EnvVar& var : registry) {
    out += "| `" + var.name + "` | " + var.summary + " |\n";
  }
  return out;
}

}  // namespace epilint
