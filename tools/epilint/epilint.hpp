// epilint — tokenizer-based determinism & communication-safety analyzer.
//
// Replaces the regex stages of tools/lint.sh with semantic rules that run
// over all of src/ (DESIGN.md §12 has the architecture and the full rule
// catalogue with rationale). Pipeline: lexer (lexer.hpp) → declaration /
// function-boundary parser (parse.hpp) → rule passes (rules.hpp) →
// waiver + baseline filtering → text/JSON output, all exposed here as a
// library so tests can drive the analyzer directly and assert exact
// findings.
//
// Rules:
//   banned-random               std::rand/srand/random_shuffle anywhere
//   wall-clock                  wall-clock reads outside util/timer.hpp
//   unordered-iter              iteration of unordered containers (order
//                               is hash order — never reproducible)
//   determinism-taint           an output/serialization function reaches
//                               a nondeterminism sink through the unit's
//                               call graph (path reported)
//   mpilite-tag-mismatch        paired send/recv with disjoint tag sets
//   mpilite-divergent-collective collective under an `if (rank == ...)`
//   mpilite-runtime-entry       mpilite::Runtime used other than via
//                               Runtime::run / Runtime::run_checked
//   env-getenv                  raw getenv outside src/util/env.cpp
//   env-registry                "EPI_*" name not in the kEnvRegistry
//                               table of util/env.hpp
//   io-raw-stream               raw stderr/stdout outside the logger
//   io-nonhex-float             %f/%e/%g, setprecision, std::fixed or
//                               std::scientific in a report path
//   bad-waiver                  `epilint: allow(...)` naming no known rule
//
// Waivers: `// epilint: allow(rule[, rule]) — justification`, covering
// the waiver's own line and the next line that carries code (so a
// multi-line justification still reaches the statement below it).
// Baseline: `rule|file[|line]`
// entries suppress findings without touching the source (kept empty in
// this repo — see tools/epilint/baseline.txt).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace epilint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string snippet;  // trimmed source line
  std::string message;
};

struct Options {
  // Roots against which `#include "..."` targets are resolved when
  // assembling lite translation units (a .cpp plus its project headers).
  // Defaults to the directories given to analyze() when empty.
  std::vector<std::string> include_dirs;
  // Header defining the kEnvRegistry table; empty disables env-registry.
  std::string env_registry_path;
};

/// Every rule id the analyzer can emit (used to validate waivers).
const std::set<std::string>& known_rules();

/// Expands files and directories (recursing for *.cpp / *.hpp) into a
/// sorted, de-duplicated file list. Throws std::runtime_error for a path
/// that does not exist.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

/// Runs every rule pass over `files`, applies inline waivers, and
/// returns findings sorted by (file, line, rule).
std::vector<Finding> analyze(const std::vector<std::string>& files,
                             const Options& options);

/// Machine-readable findings: a JSON array of
/// {"rule","file","line","snippet","message"} objects, sorted.
std::string to_json(const std::vector<Finding>& findings);

/// Human-readable findings plus the per-rule count summary.
std::string to_text(const std::vector<Finding>& findings);

/// Baseline suppressions: one `rule|file[|line]` entry per line; '#'
/// comments and blank lines ignored.
std::set<std::string> load_baseline(const std::string& path);
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::set<std::string>& baseline);
std::string baseline_entry(const Finding& finding);

// --- Environment-variable registry (util/env.hpp kEnvRegistry) ---------

struct EnvVar {
  std::string name;
  std::string summary;
};

/// Parses the `kEnvRegistry` initializer out of the given header.
std::vector<EnvVar> parse_env_registry(const std::string& header_path);

/// The registry rendered as the markdown table embedded in README.md —
/// the single source of truth for the documented EPI_* variables.
std::string env_table_markdown(const std::vector<EnvVar>& registry);

}  // namespace epilint
