#include "epilint/lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace epilint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators that must stay single tokens: `::` so the
// parser can tell qualification from a range-for `:`, and the usual
// two-char operators so condition scanning sees `==` as one unit.
const char* kMultiOps[] = {"...", "->*", "<<=", ">>=", "::", "->", "==",
                           "!=",  "<=",  ">=",  "&&", "||", "<<", ">>",
                           "+=",  "-=",  "*=",  "/=", "|=", "&=", "^=",
                           "%=",  "++",  "--"};

// Parses an `epilint: allow(rule[, rule...])` waiver out of comment text.
// Returns the rule names, empty when the comment is not a waiver.
std::set<std::string> parse_waiver(const std::string& comment) {
  std::set<std::string> rules;
  const std::string key = "epilint:";
  const std::size_t at = comment.find(key);
  if (at == std::string::npos) return rules;
  std::size_t i = at + key.size();
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  if (comment.compare(i, 5, "allow") != 0) return rules;
  i += 5;
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  if (i >= comment.size() || comment[i] != '(') return rules;
  ++i;
  std::string name;
  for (; i < comment.size() && comment[i] != ')'; ++i) {
    const char c = comment[i];
    if (c == ',') {
      if (!name.empty()) rules.insert(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  if (!name.empty()) rules.insert(name);
  if (i >= comment.size()) rules.clear();  // no closing ')': not a waiver
  return rules;
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& src) : src_(src) {
    out_.path = std::move(path);
  }

  LexedFile run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      // Encoding prefixes on ordinary literals: u8"", L'', etc.
      if ((c == 'u' || c == 'U' || c == 'L') && string_prefix()) continue;
      if (c == '"') {
        quoted(Tok::kString, '"');
        continue;
      }
      if (c == '\'') {
        quoted(Tok::kChar, '\'');
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void record_comment(const std::string& body, int line) {
    std::set<std::string> rules = parse_waiver(body);
    if (!rules.empty()) out_.waivers[line].insert(rules.begin(), rules.end());
  }

  void line_comment() {
    const int line = line_;
    std::size_t begin = i_;
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
    record_comment(src_.substr(begin, i_ - begin), line);
  }

  void block_comment() {
    const int line = line_;
    std::size_t begin = i_;
    i_ += 2;
    while (i_ < src_.size() && !(src_[i_] == '*' && peek(1) == '/')) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    if (i_ < src_.size()) i_ += 2;
    record_comment(src_.substr(begin, i_ - begin), line);
  }

  void preprocessor() {
    const int line = line_;
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && peek(1) == '\n') {  // continuation
        i_ += 2;
        ++line_;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;
      text.push_back(c);
      ++i_;
    }
    // Record quoted-include targets for unit assembly.
    std::size_t inc = text.find("include");
    if (inc != std::string::npos) {
      std::size_t open = text.find('"', inc);
      if (open != std::string::npos) {
        std::size_t close = text.find('"', open + 1);
        if (close != std::string::npos) {
          out_.includes.push_back(text.substr(open + 1, close - open - 1));
        }
      }
    }
    emit(Tok::kPP, std::move(text), line);
  }

  // Handles u8"..." / u"..." / U"..." / L"..." / uR"(...)" prefixes.
  // Returns false when the identifier is not actually a literal prefix.
  bool string_prefix() {
    std::size_t j = i_ + 1;
    if (src_[i_] == 'u' && peek(1) == '8') ++j;
    if (j >= src_.size()) return false;
    if (src_[j] == '"' || src_[j] == '\'') {
      i_ = j;
      quoted(src_[j] == '"' ? Tok::kString : Tok::kChar, src_[j]);
      return true;
    }
    if (src_[j] == 'R' && j + 1 < src_.size() && src_[j + 1] == '"') {
      i_ = j;
      raw_string();
      return true;
    }
    return false;
  }

  void quoted(Tok kind, char quote) {
    const int line = line_;
    std::string text;
    ++i_;  // opening quote
    while (i_ < src_.size() && src_[i_] != quote) {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        text.push_back(src_[i_]);
        text.push_back(src_[i_ + 1]);
        if (src_[i_ + 1] == '\n') ++line_;
        i_ += 2;
        continue;
      }
      if (src_[i_] == '\n') break;  // unterminated; close at EOL
      text.push_back(src_[i_]);
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == quote) ++i_;
    emit(kind, std::move(text), line);
  }

  void raw_string() {
    const int line = line_;
    ++i_;  // 'R'
    ++i_;  // '"'
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') delim.push_back(src_[i_++]);
    if (i_ < src_.size()) ++i_;  // '('
    const std::string close = ")" + delim + "\"";
    std::string text;
    while (i_ < src_.size() && src_.compare(i_, close.size(), close) != 0) {
      if (src_[i_] == '\n') ++line_;
      text.push_back(src_[i_++]);
    }
    if (i_ < src_.size()) i_ += close.size();
    emit(Tok::kString, std::move(text), line);
  }

  void identifier() {
    const int line = line_;
    std::size_t begin = i_;
    while (i_ < src_.size() && ident_char(src_[i_])) ++i_;
    emit(Tok::kIdent, src_.substr(begin, i_ - begin), line);
  }

  void number() {
    const int line = line_;
    std::size_t begin = i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '.' || c == '\'') {
        // Exponent signs: 1e+9, 0x1.8p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          i_ += 2;
          continue;
        }
        ++i_;
        continue;
      }
      break;
    }
    emit(Tok::kNumber, src_.substr(begin, i_ - begin), line);
  }

  void punct() {
    const int line = line_;
    for (const char* op : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src_.compare(i_, len, op) == 0) {
        emit(Tok::kPunct, op, line);
        i_ += len;
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, src_[i_]), line);
    ++i_;
  }

  const std::string& src_;
  LexedFile out_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile lex(std::string path, const std::string& source) {
  LexedFile out = Lexer(std::move(path), source).run();
  std::string line;
  for (const char c : source) {
    if (c == '\n') {
      out.lines.push_back(std::move(line));
      line.clear();
    } else if (c != '\r') {
      line.push_back(c);
    }
  }
  if (!line.empty()) out.lines.push_back(std::move(line));
  return out;
}

LexedFile lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("epilint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex(path, buf.str());
}

}  // namespace epilint
