// epilint — C++ lexer.
//
// Stage 1 of the analyzer (DESIGN.md §12): turns a source file into a
// token stream the declaration parser and rule passes can reason about,
// which is what the grep-based lint fundamentally could not do — a regex
// cannot tell a `std::rand` call from the word "rand" in a comment or a
// string, and it cannot pair a declaration in a header with a loop in the
// matching .cpp. The lexer therefore:
//
//   * drops comments and preserves string/char literal *contents* as
//     single tokens (rules match literals deliberately, e.g. "%f" format
//     specifiers and "EPI_*" environment-variable names);
//   * handles raw strings, escapes, digit separators, and line
//     continuations;
//   * folds each preprocessor directive into one opaque token, recording
//     `#include "..."` targets so the analyzer can assemble a lite
//     translation unit;
//   * harvests `// epilint: allow(rule[, rule])` waiver comments with the
//     line they cover.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace epilint {

enum class Tok {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. hex floats)
  kString,  // string literal; text holds the *contents*, quotes stripped
  kChar,    // character literal, contents only
  kPunct,   // operator / punctuation (multi-char ops are one token)
  kPP,      // whole preprocessor directive, continuations folded in
};

struct Token {
  Tok kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

struct LexedFile {
  std::string path;  // as given to lex_file(); repo-relative in practice
  std::vector<std::string> lines;  // raw source lines, for finding snippets
  std::vector<Token> tokens;
  // line -> rules waived on that line. A waiver covers findings on its
  // own line and on the following line, so it can trail the offending
  // statement or sit on its own line above it.
  std::map<int, std::set<std::string>> waivers;
  // Targets of #include "..." directives (quoted form only — project
  // headers; <...> system includes can never contain findings).
  std::vector<std::string> includes;
};

/// Lexes `source`; never fails — unterminated literals are closed at EOF.
LexedFile lex(std::string path, const std::string& source);

/// Reads and lexes a file from disk; throws std::runtime_error when the
/// file cannot be read.
LexedFile lex_file(const std::string& path);

}  // namespace epilint
