// epilint CLI — the first stage of `ci.sh lint` (driven by tools/lint.sh).
//
//   epilint [options] <file-or-dir>...
//     --json <path|->        write machine-readable findings JSON
//     --baseline <path>      suppress findings listed in the baseline
//     --write-baseline <p>   write the current findings as a baseline
//     --env-registry <path>  header defining kEnvRegistry
//                            (default: <include-dir>/util/env.hpp)
//     --include-dir <dir>    include-resolution root (repeatable)
//     --env-table            print the markdown env-var table and exit
//     --quiet                summary only, no per-finding lines
//
// Exit status: 0 clean, 1 findings remain after baseline, 2 usage/IO.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "epilint/epilint.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: epilint [--json <path|->] [--baseline <path>]\n"
               "               [--write-baseline <path>] [--env-registry <path>]\n"
               "               [--include-dir <dir>]... [--env-table] [--quiet]\n"
               "               <file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path, write_baseline_path;
  bool env_table = false, quiet = false;
  epilint::Options options;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--json") {
      const char* v = value();
      if (!v) return usage();
      json_path = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (!v) return usage();
      write_baseline_path = v;
    } else if (arg == "--env-registry") {
      const char* v = value();
      if (!v) return usage();
      options.env_registry_path = v;
    } else if (arg == "--include-dir") {
      const char* v = value();
      if (!v) return usage();
      options.include_dirs.push_back(v);
    } else if (arg == "--env-table") {
      env_table = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }

  try {
    if (options.env_registry_path.empty()) {
      for (const std::string& dir :
           options.include_dirs.empty() ? inputs : options.include_dirs) {
        const std::string candidate = dir + "/util/env.hpp";
        if (std::ifstream(candidate).good()) {
          options.env_registry_path = candidate;
          break;
        }
      }
    }

    if (env_table) {
      if (options.env_registry_path.empty()) {
        std::fprintf(stderr, "epilint: --env-table needs --env-registry\n");
        return 2;
      }
      const std::string table = epilint::env_table_markdown(
          epilint::parse_env_registry(options.env_registry_path));
      std::fwrite(table.data(), 1, table.size(), stdout);
      return 0;
    }

    if (inputs.empty()) return usage();

    const std::vector<std::string> files = epilint::collect_sources(inputs);
    std::vector<epilint::Finding> findings = epilint::analyze(files, options);

    if (!write_baseline_path.empty()) {
      std::ofstream out(write_baseline_path);
      out << "# epilint baseline — `rule|file[|line]` per line. This file is\n"
             "# meant to stay EMPTY: fix findings or waive them inline with a\n"
             "# justification; baselining is for incremental adoption only.\n";
      for (const epilint::Finding& f : findings) {
        out << epilint::baseline_entry(f) << "\n";
      }
      std::printf("epilint: wrote %zu baseline entr%s to %s\n", findings.size(),
                  findings.size() == 1 ? "y" : "ies",
                  write_baseline_path.c_str());
      return 0;
    }

    if (!baseline_path.empty()) {
      findings = epilint::apply_baseline(findings,
                                         epilint::load_baseline(baseline_path));
    }

    if (!json_path.empty()) {
      const std::string json = epilint::to_json(findings);
      if (json_path == "-") {
        std::fwrite(json.data(), 1, json.size(), stdout);
      } else {
        std::ofstream out(json_path);
        out << json;
      }
    }

    const std::string text = epilint::to_text(findings);
    if (!quiet) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      const std::size_t tail = text.rfind("epilint:");
      std::fwrite(text.data() + tail, 1, text.size() - tail, stdout);
    }
    std::printf("epilint: scanned %zu file(s)\n", files.size());
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
}
