#include "epilint/parse.hpp"

#include <algorithm>

namespace epilint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "alignas",   "alignof",  "asm",          "auto",     "bool",
      "break",     "case",     "catch",        "char",     "class",
      "co_await",  "co_return","co_yield",     "const",    "consteval",
      "constexpr", "constinit","const_cast",   "continue", "decltype",
      "default",   "delete",   "do",           "double",   "dynamic_cast",
      "else",      "enum",     "explicit",     "export",   "extern",
      "false",     "float",    "for",          "friend",   "goto",
      "if",        "inline",   "int",          "long",     "mutable",
      "namespace", "new",      "noexcept",     "nullptr",  "operator",
      "private",   "protected","public",       "register", "reinterpret_cast",
      "requires",  "return",   "short",        "signed",   "sizeof",
      "static",    "static_assert", "static_cast", "struct", "switch",
      "template",  "this",     "thread_local", "throw",    "true",
      "try",       "typedef",  "typeid",       "typename", "union",
      "unsigned",  "using",    "virtual",      "void",     "volatile",
      "wchar_t",   "while"};
  return kw;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

/// Index of the token matching the '(' at `open`, or kNone.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    else if (toks[i].text == ")" && --depth == 0) return i;
  }
  return kNone;
}

/// Index of the token matching the '{' at `open`, or kNone.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    else if (toks[i].text == "}" && --depth == 0) return i;
  }
  return kNone;
}

/// toks[open] is '<': returns the index one past the matching '>', or
/// kNone when this is a comparison rather than a template-argument list
/// (a ';', '{', or unbalanced end intervenes). `>>` closes two levels.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "<") ++depth;
      else if (t.text == ">") { if (--depth == 0) return i + 1; }
      else if (t.text == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
      else if (t.text == "(") {
        const std::size_t close = match_paren(toks, i);
        if (close == kNone) return kNone;
        i = close;
      } else if (t.text == ";" || t.text == "{" || t.text == "}") {
        return kNone;
      }
    }
  }
  return kNone;
}

// ---------------------------------------------------------------------
// Function-definition scanning.
// ---------------------------------------------------------------------

/// From the token after the parameter list's ')', skips trailing
/// qualifiers (const/noexcept/ref-qualifiers/trailing return type) and a
/// constructor initializer list. Returns the index of the body '{', or
/// kNone when this head is not a definition.
std::size_t find_body_brace(const std::vector<Token>& toks, std::size_t k) {
  static const std::set<std::string> trailers = {
      "const", "noexcept", "override", "final", "mutable", "volatile",
      "try",   "&",        "&&"};
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (t.kind == Tok::kIdent && trailers.count(t.text)) {
      ++k;
      if (k < toks.size() && is_punct(toks[k], "(")) {  // noexcept(...)
        const std::size_t close = match_paren(toks, k);
        if (close == kNone) return kNone;
        k = close + 1;
      }
      continue;
    }
    if (is_punct(t, "&") || is_punct(t, "&&")) { ++k; continue; }
    if (is_punct(t, "->")) {  // trailing return type
      ++k;
      while (k < toks.size() &&
             (toks[k].kind == Tok::kIdent || is_punct(toks[k], "::") ||
              is_punct(toks[k], "*") || is_punct(toks[k], "&"))) {
        ++k;
        if (k < toks.size() && is_punct(toks[k], "<")) {
          const std::size_t past = skip_angles(toks, k);
          if (past == kNone) return kNone;
          k = past;
        }
      }
      continue;
    }
    if (is_punct(t, ":")) {  // constructor initializer list
      ++k;
      while (k < toks.size()) {
        // Initializer name, possibly qualified/templated.
        while (k < toks.size() &&
               (toks[k].kind == Tok::kIdent || is_punct(toks[k], "::"))) {
          ++k;
        }
        if (k < toks.size() && is_punct(toks[k], "<")) {
          const std::size_t past = skip_angles(toks, k);
          if (past == kNone) return kNone;
          k = past;
        }
        if (k >= toks.size()) return kNone;
        std::size_t close;
        if (is_punct(toks[k], "(")) close = match_paren(toks, k);
        else if (is_punct(toks[k], "{")) close = match_brace(toks, k);
        else return kNone;
        if (close == kNone) return kNone;
        k = close + 1;
        if (k < toks.size() && is_punct(toks[k], ",")) { ++k; continue; }
        break;
      }
      continue;
    }
    if (is_punct(t, "{")) return k;
    return kNone;
  }
  return kNone;
}

void collect_calls(const std::vector<Token>& toks, std::size_t begin,
                   std::size_t end, std::vector<CallSite>* out) {
  for (std::size_t i = begin + 1; i + 1 < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || keywords().count(t.text)) continue;
    std::size_t j = i + 1;
    if (is_punct(toks[j], "<")) {
      const std::size_t past = skip_angles(toks, j);
      if (past == kNone || past >= end) continue;
      j = past;
    }
    if (j >= end || !is_punct(toks[j], "(")) continue;
    // Declarations look like `Type name(...)`: a preceding identifier or
    // type-ish punctuation means `t` names a variable, not a callee.
    const Token& prev = toks[i - 1];
    if (prev.kind == Tok::kIdent && !keywords().count(prev.text)) continue;
    if (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
      continue;
    }
    out->push_back(CallSite{t.text, t.line});
  }
}

void scan_functions(const LexedFile& file, std::vector<FunctionInfo>* out) {
  const std::vector<Token>& toks = file.tokens;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || keywords().count(t.text) ||
        i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) {
      ++i;
      continue;
    }
    // Member-access before the name means a call, never a definition.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      ++i;
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    if (close == kNone) { ++i; continue; }
    const std::size_t body = find_body_brace(toks, close + 1);
    if (body == kNone) { ++i; continue; }
    const std::size_t body_close = match_brace(toks, body);
    if (body_close == kNone) { ++i; continue; }
    FunctionInfo fn;
    fn.name = t.text;
    fn.file = &file;
    fn.line = t.line;
    fn.body_begin = body;
    fn.body_end = body_close + 1;
    collect_calls(toks, body, body_close + 1, &fn.calls);
    out->push_back(std::move(fn));
    i = body_close + 1;  // no nested definitions worth scanning
  }
}

// ---------------------------------------------------------------------
// Unordered-container declaration harvesting.
// ---------------------------------------------------------------------

void harvest_aliases(const std::vector<const LexedFile*>& files,
                     std::set<std::string>* aliases) {
  bool grew = true;
  while (grew) {  // aliases-of-aliases need a fixpoint
    grew = false;
    for (const LexedFile* file : files) {
      const std::vector<Token>& toks = file->tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "using") && toks[i + 1].kind == Tok::kIdent &&
            is_punct(toks[i + 2], "=")) {
          for (std::size_t j = i + 3;
               j < toks.size() && !is_punct(toks[j], ";"); ++j) {
            if (toks[j].kind == Tok::kIdent && aliases->count(toks[j].text)) {
              grew |= aliases->insert(toks[i + 1].text).second;
              break;
            }
          }
        } else if (is_ident(toks[i], "typedef")) {
          std::size_t semi = i + 1;
          bool unordered = false;
          while (semi < toks.size() && !is_punct(toks[semi], ";")) {
            if (toks[semi].kind == Tok::kIdent &&
                aliases->count(toks[semi].text)) {
              unordered = true;
            }
            ++semi;
          }
          if (unordered && semi > i + 1 &&
              toks[semi - 1].kind == Tok::kIdent) {
            grew |= aliases->insert(toks[semi - 1].text).second;
          }
        }
      }
    }
  }
}

void harvest_vars(const LexedFile& file, const std::set<std::string>& aliases,
                  std::vector<UnorderedVar>* vars) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !aliases.count(toks[i].text)) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      const std::size_t past = skip_angles(toks, j);
      if (past == kNone) continue;
      j = past;
    }
    while (j < toks.size() &&
           (is_ident(toks[j], "const") || is_punct(toks[j], "*") ||
            is_punct(toks[j], "&") || is_punct(toks[j], "&&"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent ||
        keywords().count(toks[j].text)) {
      continue;
    }
    // `unordered_map<K, V> make()` declares a function, not a variable.
    if (j + 1 < toks.size() && is_punct(toks[j + 1], "(")) continue;
    vars->push_back(UnorderedVar{toks[j].text, &file, toks[j].line});
  }
}

void harvest_auto_bindings(const LexedFile& file,
                           std::set<std::string>* var_names,
                           std::vector<UnorderedVar>* vars) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "auto")) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_ident(toks[j], "const") || is_punct(toks[j], "&") ||
            is_punct(toks[j], "&&") || is_punct(toks[j], "*"))) {
      ++j;
    }
    if (j + 1 >= toks.size() || toks[j].kind != Tok::kIdent ||
        !is_punct(toks[j + 1], "=")) {
      continue;
    }
    // The initializer must *be* the container (possibly wrapped in
    // std::as_const or parens) — `m.begin()` yields an iterator and is
    // handled as a walk at its own line instead.
    bool names_unordered = false;
    bool dereferences = false;
    for (std::size_t k = j + 2; k < toks.size() && !is_punct(toks[k], ";");
         ++k) {
      if (toks[k].kind == Tok::kIdent && var_names->count(toks[k].text)) {
        names_unordered = true;
      }
      if (is_punct(toks[k], ".") || is_punct(toks[k], "->") ||
          is_punct(toks[k], "[")) {
        dereferences = true;
      }
    }
    if (names_unordered && !dereferences) {
      vars->push_back(UnorderedVar{toks[j].text, &file, toks[j].line});
      var_names->insert(toks[j].text);
    }
  }
}

void scan_iteration(const LexedFile& file, const std::set<std::string>& vars,
                    std::vector<UnorderedIterSite>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for over an unordered container.
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      if (close == kNone) continue;
      std::size_t colon = kNone;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        else if (is_punct(toks[j], ")")) --depth;
        else if (depth == 1 && is_punct(toks[j], ":")) { colon = j; break; }
      }
      if (colon == kNone) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Tok::kIdent && vars.count(toks[j].text) &&
            !(j + 1 < close && is_punct(toks[j + 1], "("))) {
          out->push_back(UnorderedIterSite{toks[j].text, &file, toks[i].line});
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: var.begin() / var.cbegin() / ...
    if (toks[i].kind == Tok::kIdent && vars.count(toks[i].text) &&
        is_punct(toks[i + 1], ".") && i + 3 < toks.size() &&
        toks[i + 2].kind == Tok::kIdent && is_punct(toks[i + 3], "(")) {
      const std::string& m = toks[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
        out->push_back(UnorderedIterSite{toks[i].text, &file, toks[i].line});
      }
    }
  }
}

}  // namespace

bool is_cpp_keyword(const std::string& word) { return keywords().count(word); }

UnitIndex parse_unit(const std::vector<const LexedFile*>& files) {
  UnitIndex index;
  index.unordered_aliases = {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"};
  harvest_aliases(files, &index.unordered_aliases);
  for (const LexedFile* file : files) {
    harvest_vars(*file, index.unordered_aliases, &index.unordered_vars);
  }
  std::set<std::string> var_names;
  for (const UnorderedVar& v : index.unordered_vars) var_names.insert(v.name);
  for (const LexedFile* file : files) {
    harvest_auto_bindings(*file, &var_names, &index.unordered_vars);
  }
  for (const LexedFile* file : files) {
    scan_iteration(*file, var_names, &index.iter_sites);
    scan_functions(*file, &index.functions);
  }
  return index;
}

}  // namespace epilint
