// epilint — lightweight declaration and function-boundary parser.
//
// Stage 2 of the analyzer (DESIGN.md §12). This is not a C++ front end;
// it is the minimum structure the rule passes need, recovered from the
// token stream with brace/paren/angle matching:
//
//   * function definitions — name and [body) token range — so rules can
//     scope findings to a function and build a call graph;
//   * the calls made inside each body (callee names, call-site lines);
//   * unordered-container knowledge: `using`/`typedef` aliases that
//     resolve to std::unordered_{map,set}, variables/members/parameters
//     declared with such a type (directly or via alias), and `auto`
//     bindings to a known unordered variable;
//   * iteration sites over those variables (range-for and explicit
//     .begin()/.cbegin() walks).
//
// Everything is heuristic and deliberately over-approximate in the safe
// direction for a linter: a missed declaration means a missed finding,
// never a crash; an extra call-graph edge can only add a taint path that
// an inline waiver can silence.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "epilint/lexer.hpp"

namespace epilint {

struct CallSite {
  std::string callee;  // unqualified name
  int line;
};

struct FunctionInfo {
  std::string name;        // unqualified: `bar` for `void Foo::bar()`
  const LexedFile* file;   // file holding the definition
  int line;                // line of the function name
  std::size_t body_begin;  // token index of the opening '{'
  std::size_t body_end;    // token index one past the closing '}'
  std::vector<CallSite> calls;
};

/// A declared variable/member/parameter of unordered-container type.
struct UnorderedVar {
  std::string name;
  const LexedFile* file;
  int line;
};

/// A loop or .begin() walk whose iteration order is hash order.
struct UnorderedIterSite {
  std::string var;
  const LexedFile* file;
  int line;
};

/// Everything the parser recovered from one analysis unit (a .cpp plus
/// the project headers it includes, or a lone header).
struct UnitIndex {
  std::vector<FunctionInfo> functions;
  std::set<std::string> unordered_aliases;  // incl. the std names
  std::vector<UnorderedVar> unordered_vars;
  std::vector<UnorderedIterSite> iter_sites;
};

/// Parses all files of one unit. Aliases and variable declarations are
/// harvested across every file first (a member declared in the header
/// must be known when the .cpp iterates it), then functions and
/// iteration sites are collected per file.
UnitIndex parse_unit(const std::vector<const LexedFile*>& files);

/// True for identifiers that can never be a function/callee name.
bool is_cpp_keyword(const std::string& word);

}  // namespace epilint
