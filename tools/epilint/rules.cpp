#include "epilint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <queue>

namespace epilint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool in_mpilite(const std::string& path) {
  return path.find("mpilite/") != std::string::npos;
}

std::string snippet_for(const LexedFile& file, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > file.lines.size()) return "";
  const std::string& raw = file.lines[line - 1];
  std::size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = raw.find_last_not_of(" \t");
  return raw.substr(b, e - b + 1);
}

void emit(const LexedFile& file, int line, const char* rule,
          std::string message, std::vector<Finding>* out) {
  out->push_back(
      Finding{rule, file.path, line, snippet_for(file, line), std::move(message)});
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    else if (toks[i].text == ")" && --depth == 0) return i;
  }
  return kNone;
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    else if (toks[i].text == "}" && --depth == 0) return i;
  }
  return kNone;
}

// ---------------------------------------------------------------------
// Token-level site scans, shared between the global per-file rules and
// the per-function sink collection of the taint pass.
// ---------------------------------------------------------------------

struct TokSite {
  int line;
  std::string desc;
};

std::vector<TokSite> find_banned_random(const std::vector<Token>& toks,
                                        std::size_t b, std::size_t e) {
  static const std::set<std::string> banned = {
      "rand", "srand", "random_shuffle", "rand_r", "drand48", "lrand48"};
  std::vector<TokSite> sites;
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (toks[i].kind == Tok::kIdent && banned.count(toks[i].text) &&
        is_punct(toks[i + 1], "(")) {
      // `obj.rand(...)` is a method of some seeded type, not libc rand.
      if (i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      sites.push_back({toks[i].line, toks[i].text + "() (unseeded libc randomness)"});
    }
  }
  return sites;
}

std::vector<TokSite> find_wall_clock(const std::vector<Token>& toks,
                                     std::size_t b, std::size_t e) {
  static const std::set<std::string> clocks = {
      "system_clock", "high_resolution_clock", "localtime", "gmtime",
      "strftime",     "asctime",               "ctime",     "gettimeofday",
      "timespec_get"};
  std::vector<TokSite> sites;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& name = toks[i].text;
    if (clocks.count(name)) {
      if (i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      sites.push_back({toks[i].line, name + " (wall-clock read)"});
      continue;
    }
    if (name == "time" && i + 1 < e && is_punct(toks[i + 1], "(")) {
      const bool qualified = i > b && is_punct(toks[i - 1], "::");
      const bool null_arg =
          i + 3 < e &&
          (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" ||
           toks[i + 2].text == "0") &&
          is_punct(toks[i + 3], ")");
      if (qualified || null_arg) {
        sites.push_back({toks[i].line, "time() (wall-clock read)"});
      }
      continue;
    }
    if (name == "clock" && i + 2 < e && is_punct(toks[i + 1], "(") &&
        is_punct(toks[i + 2], ")")) {
      if (i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      sites.push_back({toks[i].line, "clock() (processor-time read)"});
    }
  }
  return sites;
}

std::vector<TokSite> find_getenv(const std::vector<Token>& toks, std::size_t b,
                                 std::size_t e) {
  std::vector<TokSite> sites;
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (toks[i].kind == Tok::kIdent &&
        (toks[i].text == "getenv" || toks[i].text == "secure_getenv") &&
        is_punct(toks[i + 1], "(")) {
      sites.push_back({toks[i].line, toks[i].text + "()"});
    }
  }
  return sites;
}

std::vector<TokSite> find_raw_stream(const std::vector<Token>& toks,
                                     std::size_t b, std::size_t e) {
  static const std::set<std::string> streams = {"cerr", "cout", "clog"};
  static const std::set<std::string> print_fns = {"printf", "vprintf", "puts",
                                                  "putchar"};
  std::vector<TokSite> sites;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& name = toks[i].text;
    if (streams.count(name)) {
      // Only access to the stream object, not e.g. a member named cout.
      if (i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      sites.push_back({toks[i].line, "std::" + name});
      continue;
    }
    if (i + 1 >= e || !is_punct(toks[i + 1], "(")) continue;
    if (print_fns.count(name)) {
      sites.push_back({toks[i].line, name + "()"});
      continue;
    }
    if ((name == "fprintf" || name == "vfprintf") && i + 2 < e &&
        (toks[i + 2].text == "stderr" || toks[i + 2].text == "stdout")) {
      sites.push_back({toks[i].line, name + "(" + toks[i + 2].text + ", ...)"});
    }
  }
  return sites;
}

/// True when a printf-style format string contains a non-hexfloat
/// floating-point conversion (%f/%e/%g; %a is the sanctioned exact form).
bool has_nonhex_float_spec(const std::string& text) {
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '%') continue;
    std::size_t j = i + 1;
    if (text[j] == '%') { i = j; continue; }
    while (j < text.size() && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                               text[j] == '-' || text[j] == '+' ||
                               text[j] == ' ' || text[j] == '#' ||
                               text[j] == '.' || text[j] == '*' ||
                               text[j] == '\'')) {
      ++j;
    }
    while (j < text.size() && (text[j] == 'l' || text[j] == 'L' ||
                               text[j] == 'h')) {
      ++j;
    }
    if (j < text.size() && (text[j] == 'f' || text[j] == 'F' ||
                            text[j] == 'e' || text[j] == 'E' ||
                            text[j] == 'g' || text[j] == 'G')) {
      return true;
    }
  }
  return false;
}

std::vector<TokSite> find_nonhex_float(const std::vector<Token>& toks,
                                       std::size_t b, std::size_t e) {
  std::vector<TokSite> sites;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kString && has_nonhex_float_spec(t.text)) {
      sites.push_back({t.line, "\"%" "f\"-style format (prints distinct doubles alike)"});
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "setprecision" && i + 1 < e && is_punct(toks[i + 1], "(")) {
      sites.push_back({t.line, "std::setprecision"});
      continue;
    }
    if ((t.text == "fixed" || t.text == "scientific") && i > b &&
        is_punct(toks[i - 1], "::")) {
      sites.push_back({t.line, "std::" + t.text});
    }
  }
  return sites;
}

// ---------------------------------------------------------------------
// Determinism taint: seeds, sinks, reachability.
// ---------------------------------------------------------------------

bool contains_ci(const std::string& haystack, const char* needle) {
  std::string lower;
  lower.reserve(haystack.size());
  for (char c : haystack) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find(needle) != std::string::npos;
}

/// Does a format string contain a hexfloat (%a / %A) conversion?
bool has_hexfloat_spec(const std::string& text) {
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '%') continue;
    std::size_t j = i + 1;
    while (j < text.size() && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                               text[j] == '-' || text[j] == '.' ||
                               text[j] == '*')) {
      ++j;
    }
    if (j < text.size() && (text[j] == 'a' || text[j] == 'A')) return true;
  }
  return false;
}

/// An output/serialization function: the roots of the determinism-taint
/// pass. Matched by name (serialize/dump/report/write*) or by evidence
/// in the body — hexfloat formatting only ever appears in the repo's
/// byte-identity report dumps.
bool is_output_seed(const FunctionInfo& fn) {
  if (contains_ci(fn.name, "serialize") || contains_ci(fn.name, "dump") ||
      contains_ci(fn.name, "report") || contains_ci(fn.name, "write")) {
    return true;
  }
  const std::vector<Token>& toks = fn.file->tokens;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (toks[i].kind == Tok::kString && has_hexfloat_spec(toks[i].text)) {
      return true;
    }
    if (toks[i].kind == Tok::kIdent && toks[i].text == "hexfloat") return true;
  }
  return false;
}

struct Sink {
  const LexedFile* file;
  int line;
  std::string desc;
};

struct TaintGraph {
  std::vector<const FunctionInfo*> fns;
  std::vector<bool> seed;
  std::vector<std::vector<Sink>> sinks;
  std::vector<std::vector<std::size_t>> edges;  // caller -> callees
  std::vector<bool> reached;                    // from any seed
  std::vector<std::size_t> parent;              // BFS tree, kNone at roots
};

TaintGraph build_taint_graph(const Unit& unit) {
  TaintGraph g;
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (const FunctionInfo& fn : unit.index.functions) {
    by_name[fn.name].push_back(g.fns.size());
    g.fns.push_back(&fn);
  }
  g.seed.resize(g.fns.size());
  g.sinks.resize(g.fns.size());
  g.edges.resize(g.fns.size());
  g.reached.assign(g.fns.size(), false);
  g.parent.assign(g.fns.size(), kNone);

  for (std::size_t i = 0; i < g.fns.size(); ++i) {
    const FunctionInfo& fn = *g.fns[i];
    g.seed[i] = is_output_seed(fn);
    const std::vector<Token>& toks = fn.file->tokens;
    const int first_line = toks[fn.body_begin].line;
    const int last_line = toks[fn.body_end - 1].line;
    for (const TokSite& s :
         find_banned_random(toks, fn.body_begin, fn.body_end)) {
      g.sinks[i].push_back({fn.file, s.line, s.desc});
    }
    if (!path_ends_with(fn.file->path, "util/timer.hpp")) {
      for (const TokSite& s :
           find_wall_clock(toks, fn.body_begin, fn.body_end)) {
        g.sinks[i].push_back({fn.file, s.line, s.desc});
      }
    }
    for (const UnorderedIterSite& s : unit.index.iter_sites) {
      if (s.file == fn.file && s.line >= first_line && s.line <= last_line) {
        g.sinks[i].push_back(
            {s.file, s.line, "unordered-container iteration of '" + s.var + "'"});
      }
    }
    for (const CallSite& call : fn.calls) {
      auto it = by_name.find(call.callee);
      if (it == by_name.end()) continue;
      for (std::size_t callee : it->second) {
        if (callee != i) g.edges[i].push_back(callee);
      }
    }
  }

  std::queue<std::size_t> queue;
  for (std::size_t i = 0; i < g.fns.size(); ++i) {
    if (g.seed[i]) {
      g.reached[i] = true;
      queue.push(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop();
    for (std::size_t next : g.edges[i]) {
      if (!g.reached[next]) {
        g.reached[next] = true;
        g.parent[next] = i;
        queue.push(next);
      }
    }
  }
  return g;
}

std::string taint_chain(const TaintGraph& g, std::size_t node) {
  std::vector<std::string> names;
  for (std::size_t i = node; i != kNone; i = g.parent[i]) {
    names.push_back(g.fns[i]->name);
  }
  std::reverse(names.begin(), names.end());
  std::string chain;
  for (const std::string& n : names) {
    if (!chain.empty()) chain += " -> ";
    chain += n;
  }
  return chain;
}

// ---------------------------------------------------------------------
// mpilite misuse.
// ---------------------------------------------------------------------

/// Splits the argument list of the call whose '(' is at `open` into
/// top-level argument strings (token texts joined with spaces).
std::vector<std::string> call_args(const std::vector<Token>& toks,
                                   std::size_t open) {
  std::vector<std::string> args;
  const std::size_t close = match_paren(toks, open);
  if (close == kNone) return args;
  std::string current;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
      if (t.text == ")" || t.text == "}" || t.text == "]") --depth;
      if (t.text == "," && depth == 0) {
        args.push_back(current);
        current.clear();
        continue;
      }
    }
    if (!current.empty()) current += ' ';
    current += t.text;
  }
  args.push_back(current);
  return args;
}

void check_tag_mismatch(const FunctionInfo& fn, std::vector<Finding>* out) {
  const std::vector<Token>& toks = fn.file->tokens;
  std::set<std::string> send_tags, recv_tags;
  int first_recv_line = 0;
  for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
    if (!(is_punct(toks[i], ".") || is_punct(toks[i], "->"))) continue;
    const Token& name = toks[i + 1];
    if (name.kind != Tok::kIdent) continue;
    const bool is_send = name.text == "send" || name.text == "send_bytes";
    const bool is_recv = name.text == "recv" || name.text == "recv_bytes";
    if (!is_send && !is_recv) continue;
    std::size_t open = i + 2;
    if (is_punct(toks[open], "<")) {  // send<T>(...)
      int depth = 0;
      do {
        if (toks[open].kind == Tok::kPunct) {
          if (toks[open].text == "<") ++depth;
          else if (toks[open].text == ">") --depth;
          else if (toks[open].text == ">>") depth -= 2;
        }
        ++open;
      } while (open < fn.body_end && depth > 0);
    }
    if (open >= fn.body_end || !is_punct(toks[open], "(")) continue;
    const std::vector<std::string> args = call_args(toks, open);
    if (args.size() < 2) continue;
    if (is_send) {
      send_tags.insert(args[1]);
    } else {
      recv_tags.insert(args[1]);
      if (first_recv_line == 0) first_recv_line = name.line;
    }
  }
  if (send_tags.empty() || recv_tags.empty()) return;
  for (const std::string& tag : send_tags) {
    if (recv_tags.count(tag)) return;  // at least one matched pair
  }
  std::string sends, recvs;
  for (const std::string& t : send_tags) sends += (sends.empty() ? "" : ", ") + t;
  for (const std::string& t : recv_tags) recvs += (recvs.empty() ? "" : ", ") + t;
  emit(*fn.file, first_recv_line, "mpilite-tag-mismatch",
       "'" + fn.name + "' pairs sends tagged {" + sends +
           "} with receives tagged {" + recvs +
           "}; no tag matches, so these messages can never pair up",
       out);
}

void check_divergent_collectives(const FunctionInfo& fn,
                                 std::vector<Finding>* out) {
  static const std::set<std::string> collectives = {
      "barrier", "allreduce", "allgatherv", "alltoallv",
      "broadcast", "bcast",   "reduce",     "gather",    "scatter"};
  static const std::set<std::string> rank_names = {"rank", "rank_", "my_rank",
                                                   "myrank"};
  const std::vector<Token>& toks = fn.file->tokens;

  auto scan_extent = [&](std::size_t b, std::size_t e, int cond_line) {
    for (std::size_t i = b; i < e; ++i) {
      if (toks[i].kind != Tok::kIdent || !collectives.count(toks[i].text)) {
        continue;
      }
      if (i + 1 >= e) continue;
      if (!(is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "<"))) continue;
      if (i > b && is_punct(toks[i - 1], "::")) continue;
      emit(*fn.file, toks[i].line, "mpilite-divergent-collective",
           "collective '" + toks[i].text +
               "' called under a rank-divergent branch (condition at line " +
               std::to_string(cond_line) +
               "); all ranks must make the same collective calls",
           out);
    }
  };

  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!(toks[i].kind == Tok::kIdent && toks[i].text == "if") ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t cond_close = match_paren(toks, i + 1);
    if (cond_close == kNone || cond_close >= fn.body_end) continue;
    bool mentions_rank = false, compares = false;
    for (std::size_t j = i + 2; j < cond_close; ++j) {
      if (toks[j].kind == Tok::kIdent && rank_names.count(toks[j].text)) {
        mentions_rank = true;
      }
      if (is_punct(toks[j], "==") || is_punct(toks[j], "!=")) compares = true;
    }
    if (!mentions_rank || !compares) continue;
    const int cond_line = toks[i].line;
    // Then-branch extent.
    std::size_t b = cond_close + 1, e;
    if (b < fn.body_end && is_punct(toks[b], "{")) {
      e = match_brace(toks, b);
      if (e == kNone) continue;
    } else {
      e = b;
      while (e < fn.body_end && !is_punct(toks[e], ";")) ++e;
    }
    scan_extent(b, std::min(e + 1, fn.body_end), cond_line);
    // Else-branch (unless it chains into another if, which is scanned on
    // its own and may carry its own rank condition).
    std::size_t after = e + 1;
    if (after < fn.body_end && toks[after].kind == Tok::kIdent &&
        toks[after].text == "else") {
      std::size_t eb = after + 1;
      if (eb < fn.body_end && toks[eb].kind == Tok::kIdent &&
          toks[eb].text == "if") {
        continue;
      }
      std::size_t ee;
      if (eb < fn.body_end && is_punct(toks[eb], "{")) {
        ee = match_brace(toks, eb);
        if (ee == kNone) continue;
      } else {
        ee = eb;
        while (ee < fn.body_end && !is_punct(toks[ee], ";")) ++ee;
      }
      scan_extent(eb, std::min(ee + 1, fn.body_end), cond_line);
    }
  }
}

void check_runtime_entry(const LexedFile& file, std::vector<Finding>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].kind == Tok::kIdent && toks[i].text == "Runtime")) continue;
    // `class Runtime`, `friend class Runtime` — declarations, not uses.
    if (i > 0 && toks[i - 1].kind == Tok::kIdent &&
        (toks[i - 1].text == "class" || toks[i - 1].text == "struct")) {
      continue;
    }
    if (is_punct(toks[i + 1], "::") && i + 2 < toks.size() &&
        toks[i + 2].kind == Tok::kIdent) {
      const std::string& member = toks[i + 2].text;
      if (member != "run" && member != "run_checked") {
        emit(file, toks[i].line, "mpilite-runtime-entry",
             "Runtime::" + member +
                 " — the SPMD world may only be entered through "
                 "Runtime::run or Runtime::run_checked",
             out);
      }
      continue;
    }
    if (toks[i + 1].kind == Tok::kIdent && !is_cpp_keyword(toks[i + 1].text)) {
      emit(file, toks[i].line, "mpilite-runtime-entry",
           "Runtime instance '" + toks[i + 1].text +
               "' — Runtime is not instantiable outside mpilite; use "
               "Runtime::run or Runtime::run_checked",
           out);
    }
  }
}

}  // namespace

void run_rules(const Unit& unit, const std::set<std::string>& env_registry,
               std::vector<Finding>* out) {
  // --- Global token rules over each primary file ------------------------
  for (const LexedFile* file : unit.files) {
    if (!unit.primary.count(file)) continue;
    const std::vector<Token>& toks = file->tokens;

    for (const TokSite& s : find_banned_random(toks, 0, toks.size())) {
      emit(*file, s.line, "banned-random",
           s.desc + "; use the seeded epi::Rng instead", out);
    }

    if (!path_ends_with(file->path, "util/timer.hpp")) {
      for (const TokSite& s : find_wall_clock(toks, 0, toks.size())) {
        emit(*file, s.line, "wall-clock",
             s.desc + " outside util/timer.hpp; simulation state must never "
                      "depend on real time — use epi::Timer for measurement",
             out);
      }
    }

    if (!path_ends_with(file->path, "util/env.cpp")) {
      for (const TokSite& s : find_getenv(toks, 0, toks.size())) {
        emit(*file, s.line, "env-getenv",
             "raw " + s.desc + " outside src/util/env.cpp; go through the "
                               "util/env accessors so every knob is "
                               "registered, validated, and documented",
             out);
      }
    }

    for (const TokSite& s : find_raw_stream(toks, 0, toks.size())) {
      emit(*file, s.line, "io-raw-stream",
           "raw " + s.desc + " write outside the logger; use EPI_WARN/"
                             "EPI_ERROR so EPI_LOG_LEVEL and set_log_sink() "
                             "govern every line the workflow emits",
           out);
    }

    if (!env_registry.empty()) {
      for (const Token& t : toks) {
        if (t.kind != Tok::kString || t.text.size() < 5 ||
            t.text.compare(0, 4, "EPI_") != 0) {
          continue;
        }
        const bool name_shaped =
            t.text.find_first_not_of(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") == std::string::npos;
        if (name_shaped && !env_registry.count(t.text)) {
          emit(*file, t.line, "env-registry",
               "\"" + t.text + "\" is not registered in the kEnvRegistry "
                               "table of util/env.hpp; add it there (with a "
                               "summary) so the README table stays complete",
               out);
        }
      }
    }

    if (!in_mpilite(file->path)) check_runtime_entry(*file, out);
  }

  // --- Unordered-container iteration ------------------------------------
  for (const UnorderedIterSite& s : unit.index.iter_sites) {
    if (!unit.primary.count(s.file)) continue;
    emit(*s.file, s.line, "unordered-iter",
         "iteration over unordered container '" + s.var +
             "' — hash order differs across libstdc++ versions and runs; "
             "iterate a sorted/ordered structure instead",
         out);
  }

  // --- Function-scoped mpilite rules ------------------------------------
  for (const FunctionInfo& fn : unit.index.functions) {
    if (!unit.primary.count(fn.file) || in_mpilite(fn.file->path)) continue;
    check_tag_mismatch(fn, out);
    check_divergent_collectives(fn, out);
  }

  // --- Determinism taint + report-path float formatting ------------------
  const TaintGraph graph = build_taint_graph(unit);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < graph.fns.size(); ++i) {
    if (!graph.reached[i]) continue;
    const FunctionInfo& fn = *graph.fns[i];
    for (const Sink& sink : graph.sinks[i]) {
      // Attribute at the sink when it lies in a primary file, else at
      // the seed that reaches it, so each unit only reports on the
      // files it owns.
      const LexedFile* at_file = sink.file;
      int at_line = sink.line;
      if (!unit.primary.count(at_file)) {
        std::size_t root = i;
        while (graph.parent[root] != kNone) root = graph.parent[root];
        if (!unit.primary.count(graph.fns[root]->file)) continue;
        at_file = graph.fns[root]->file;
        at_line = graph.fns[root]->line;
      }
      const std::string key = at_file->path + ":" + std::to_string(at_line) +
                              ":" + sink.desc;
      if (!seen.insert(key).second) continue;
      emit(*at_file, at_line, "determinism-taint",
           "output path " + taint_chain(graph, i) + " reaches " + sink.desc +
               " (" + sink.file->path + ":" + std::to_string(sink.line) +
               "); everything an output function touches must be "
               "deterministic",
           out);
    }
    if (unit.primary.count(fn.file)) {
      const std::vector<Token>& toks = fn.file->tokens;
      for (const TokSite& s :
           find_nonhex_float(toks, fn.body_begin, fn.body_end)) {
        emit(*fn.file, s.line, "io-nonhex-float",
             s.desc + " in report path '" + fn.name +
                 "'; report dumps use hexfloat (\"%a\") so byte equality "
                 "is value equality",
             out);
      }
    }
  }
}

}  // namespace epilint
