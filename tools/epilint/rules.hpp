// epilint — rule passes (stage 3; see epilint.hpp for the catalogue).
//
// Rules run per analysis unit: a .cpp together with its transitively
// included project headers (or a lone header), parsed into a UnitIndex.
// Declarations, aliases, and call-graph edges are harvested across the
// whole unit — that is what lets a loop in a .cpp be matched against a
// member declared in the header — but findings are only *emitted* for a
// unit's primary files, so each file is reported by exactly one unit.
#pragma once

#include <set>
#include <vector>

#include "epilint/epilint.hpp"
#include "epilint/lexer.hpp"
#include "epilint/parse.hpp"

namespace epilint {

struct Unit {
  std::vector<const LexedFile*> files;    // primary files first
  std::set<const LexedFile*> primary;     // files findings may land in
  UnitIndex index;
};

/// Runs every rule pass over one unit. `env_registry` holds the
/// registered EPI_* names (empty set disables the env-registry rule).
void run_rules(const Unit& unit, const std::set<std::string>& env_registry,
               std::vector<Finding>* out);

}  // namespace epilint
