#include "epitrace/epitrace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "util/error.hpp"

namespace epi::epitrace {

namespace {

constexpr double kMicrosToHours = 1.0 / (3600.0 * 1e6);
// Relative slack for interval comparisons: hours -> microseconds -> hours
// round-trips through the trace file cost a few ulps.
constexpr double kEps = 1e-9;

double slack_for(double value) { return kEps * (std::abs(value) + 1.0); }

/// %.6g — compact human-readable numbers for rendered text (the JSON
/// summary keeps full precision via Json::dump).
std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", fraction * 100.0);
  return buf;
}

/// Length of the union of [start, end) intervals (the intervals may
/// overlap or nest; each point counts once).
double union_hours(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double cover_end = -1e300;
  for (const auto& [start, end] : intervals) {
    if (start > cover_end) {
      total += end - start;
      cover_end = end;
    } else if (end > cover_end) {
      total += end - cover_end;
      cover_end = end;
    }
  }
  return total;
}

bool span_order(const Span& a, const Span& b) {
  return std::tie(a.start_hours, a.duration_hours, a.pid, a.tid, a.name) <
         std::tie(b.start_hours, b.duration_hours, b.pid, b.tid, b.name);
}

}  // namespace

const std::string& TraceModel::process(std::uint32_t pid) const {
  static const std::string unknown = "?";
  const auto it = process_names.find(pid);
  return it == process_names.end() ? unknown : it->second;
}

TraceModel load_trace(const Json& doc) {
  EPI_REQUIRE(doc.is_object() && doc.contains("traceEvents"),
              "not a trace document (no traceEvents member)");
  const Json& events = doc.at("traceEvents");
  EPI_REQUIRE(events.is_array(), "traceEvents is not an array");

  TraceModel model;
  struct OpenSpan {
    std::string name;
    std::string category;
    double start_hours = 0.0;
    double nodes = 1.0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<OpenSpan>>
      open;
  std::set<std::string> open_flows;

  for (const Json& event : events.as_array()) {
    EPI_REQUIRE(event.is_object() && event.contains("ph"),
                "malformed trace event");
    const std::string& ph = event.at("ph").as_string();
    const auto pid = static_cast<std::uint32_t>(event.get_int("pid", 0));
    const auto tid = static_cast<std::uint32_t>(event.get_int("tid", 0));
    if (ph == "M") {
      const std::string kind = event.get_string("name", "");
      if (kind == "process_name") {
        model.process_names[pid] =
            event.at("args").get_string("name", "");
      } else if (kind == "thread_name") {
        model.thread_names[{pid, tid}] =
            event.at("args").get_string("name", "");
      }
      continue;
    }
    ++model.events;
    const double ts_hours = event.get_double("ts", 0.0) * kMicrosToHours;
    double nodes = 1.0;
    if (event.contains("args") && event.at("args").is_object() &&
        event.at("args").contains("nodes")) {
      nodes = event.at("args").at("nodes").as_double();
    }
    if (ph == "X") {
      Span span;
      span.pid = pid;
      span.tid = tid;
      span.start_hours = ts_hours;
      span.duration_hours = event.get_double("dur", 0.0) * kMicrosToHours;
      span.name = event.get_string("name", "");
      span.category = event.get_string("cat", "");
      span.nodes = nodes;
      model.spans.push_back(std::move(span));
    } else if (ph == "B") {
      OpenSpan begun;
      begun.name = event.get_string("name", "");
      begun.category = event.get_string("cat", "");
      begun.start_hours = ts_hours;
      begun.nodes = nodes;
      open[{pid, tid}].push_back(std::move(begun));
    } else if (ph == "E") {
      auto& stack = open[{pid, tid}];
      EPI_REQUIRE(!stack.empty(), "E event with no open B on lane ("
                                      << pid << ", " << tid << ")");
      const OpenSpan begun = stack.back();
      stack.pop_back();
      Span span;
      span.pid = pid;
      span.tid = tid;
      span.start_hours = begun.start_hours;
      span.duration_hours = std::max(0.0, ts_hours - begun.start_hours);
      span.name = begun.name;
      span.category = begun.category;
      span.nodes = begun.nodes;
      model.spans.push_back(std::move(span));
    } else if (ph == "i") {
      ++model.instants;
    } else if (ph == "C") {
      ++model.counter_samples;
      if (model.slurm_total_nodes == 0.0 &&
          event.get_string("name", "") == "slurm.nodes" &&
          event.contains("args")) {
        const Json& args = event.at("args");
        model.slurm_total_nodes = args.get_double("busy", 0.0) +
                                  args.get_double("down", 0.0) +
                                  args.get_double("free", 0.0);
      }
    } else if (ph == "s") {
      open_flows.insert(event.get_string("id", ""));
    } else if (ph == "f") {
      if (open_flows.erase(event.get_string("id", "")) > 0) {
        ++model.flow_chains;
      }
    }
    // 't' steps and unknown phases carry no span/flow bookkeeping here;
    // structural validation is trace_check's job.
  }
  for (const auto& [lane, stack] : open) {
    EPI_REQUIRE(stack.empty(), "lane (" << lane.first << ", " << lane.second
                                        << ") has unclosed B span(s)");
  }
  std::sort(model.spans.begin(), model.spans.end(), span_order);
  return model;
}

TraceModel load_trace_file(const std::string& path) {
  return load_trace(read_json_file(path));
}

std::vector<PhasePath> critical_paths(const TraceModel& model) {
  std::vector<PhasePath> result;

  // Per-lane span lists for self-time computation.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<const Span*>>
      lanes;
  for (const Span& span : model.spans) {
    if (span.category != "phase") lanes[{span.pid, span.tid}].push_back(&span);
  }
  auto self_time = [&lanes](const Span& span) {
    std::vector<std::pair<double, double>> nested;
    const double slack = slack_for(span.end_hours());
    for (const Span* other : lanes[{span.pid, span.tid}]) {
      if (other == &span) continue;
      if (other->start_hours >= span.start_hours - slack &&
          other->end_hours() <= span.end_hours() + slack &&
          other->duration_hours < span.duration_hours - slack) {
        nested.emplace_back(std::max(other->start_hours, span.start_hours),
                            std::min(other->end_hours(), span.end_hours()));
      }
    }
    return std::max(0.0, span.duration_hours - union_hours(std::move(nested)));
  };

  for (const Span& phase : model.spans) {
    if (phase.category != "phase") continue;
    PhasePath path;
    path.name = phase.name;
    path.site = model.process(phase.pid);
    path.start_hours = phase.start_hours;
    path.duration_hours = phase.duration_hours;

    // Candidates: positive-duration non-phase spans fully inside the
    // phase window, across every process (phases are globally sequential
    // on the workflow clock, so the window identifies the phase).
    const double slack = slack_for(phase.end_hours());
    std::vector<const Span*> candidates;
    for (const Span& span : model.spans) {
      if (span.category == "phase" || span.duration_hours <= 0.0) continue;
      if (span.start_hours >= phase.start_hours - slack &&
          span.end_hours() <= phase.end_hours() + slack) {
        candidates.push_back(&span);
      }
    }
    // Longest chain of pairwise non-overlapping spans, by dynamic
    // programming over end-sorted candidates with a prefix-max table:
    // dp[i] = dur[i] + best dp among spans ending before i starts.
    std::sort(candidates.begin(), candidates.end(),
              [](const Span* a, const Span* b) {
                return std::tie(a->start_hours, a->duration_hours, a->pid,
                                a->tid, a->name) <
                       std::tie(b->start_hours, b->duration_hours, b->pid,
                                b->tid, b->name);
              });
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Span* a, const Span* b) {
                       return a->end_hours() < b->end_hours();
                     });
    const std::size_t n = candidates.size();
    std::vector<double> dp(n, 0.0), prefix_best(n, 0.0);
    std::vector<std::ptrdiff_t> parent(n, -1), prefix_arg(n, -1);
    std::vector<double> ends(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) ends[i] = candidates[i]->end_hours();
    for (std::size_t i = 0; i < n; ++i) {
      const Span& span = *candidates[i];
      // Last candidate whose end <= this span's start (with slack).
      const double cutoff = span.start_hours + slack_for(span.start_hours);
      const auto it = std::upper_bound(ends.begin(), ends.begin() +
                                           static_cast<std::ptrdiff_t>(i),
                                       cutoff);
      dp[i] = span.duration_hours;
      if (it != ends.begin()) {
        const auto j = static_cast<std::size_t>(it - ends.begin()) - 1;
        if (prefix_best[j] > 0.0) {
          dp[i] += prefix_best[j];
          parent[i] = prefix_arg[j];
        }
      }
      // Strict > keeps the earliest argmax: deterministic tie-break.
      prefix_best[i] = i > 0 ? prefix_best[i - 1] : 0.0;
      prefix_arg[i] = i > 0 ? prefix_arg[i - 1] : -1;
      if (dp[i] > prefix_best[i]) {
        prefix_best[i] = dp[i];
        prefix_arg[i] = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (n > 0 && prefix_best[n - 1] > 0.0) {
      path.total_hours = prefix_best[n - 1];
      std::vector<const Span*> chain;
      for (std::ptrdiff_t i = prefix_arg[n - 1]; i >= 0; i = parent[i]) {
        chain.push_back(candidates[static_cast<std::size_t>(i)]);
      }
      std::reverse(chain.begin(), chain.end());
      for (const Span* span : chain) {
        PathSpan entry;
        entry.process = model.process(span->pid);
        entry.tid = span->tid;
        entry.name = span->name;
        entry.start_hours = span->start_hours;
        entry.duration_hours = span->duration_hours;
        entry.self_hours = self_time(*span);
        path.spans.push_back(std::move(entry));
      }
    }
    result.push_back(std::move(path));
  }
  std::sort(result.begin(), result.end(),
            [](const PhasePath& a, const PhasePath& b) {
              return std::tie(a.start_hours, a.site, a.name) <
                     std::tie(b.start_hours, b.site, b.name);
            });
  return result;
}

std::vector<LaneBusy> lane_busy(const TraceModel& model) {
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<double, double>>>
      intervals;
  for (const Span& span : model.spans) {
    if (span.category == "phase") continue;
    intervals[{span.pid, span.tid}].emplace_back(span.start_hours,
                                                 span.end_hours());
  }
  std::vector<LaneBusy> result;
  for (auto& [lane, spans] : intervals) {
    LaneBusy busy;
    busy.process = model.process(lane.first);
    busy.pid = lane.first;
    busy.tid = lane.second;
    const auto it = model.thread_names.find(lane);
    if (it != model.thread_names.end()) busy.thread = it->second;
    busy.busy_hours = union_hours(std::move(spans));
    result.push_back(std::move(busy));
  }
  return result;  // map order: (pid, tid) ascending — deterministic
}

std::vector<Imbalance> imbalance(const TraceModel& model) {
  std::map<std::uint32_t, std::vector<double>> by_pid;
  for (const LaneBusy& lane : lane_busy(model)) {
    by_pid[lane.pid].push_back(lane.busy_hours);
  }
  std::vector<Imbalance> result;
  for (const auto& [pid, busies] : by_pid) {
    Imbalance entry;
    entry.process = model.process(pid);
    entry.lanes = busies.size();
    double sum = 0.0;
    for (const double busy : busies) {
      entry.max_busy_hours = std::max(entry.max_busy_hours, busy);
      sum += busy;
    }
    entry.mean_busy_hours = sum / static_cast<double>(busies.size());
    entry.ratio = entry.mean_busy_hours > 0.0
                      ? entry.max_busy_hours / entry.mean_busy_hours
                      : 1.0;
    result.push_back(std::move(entry));
  }
  return result;
}

std::map<std::string, double> category_hours(const TraceModel& model) {
  std::map<std::string, double> result;
  for (const Span& span : model.spans) {
    if (span.category == "phase") continue;
    result[span.category.empty() ? "(uncategorized)" : span.category] +=
        span.duration_hours;
  }
  return result;
}

std::map<std::string, double> collective_wait_seconds(const Json& metrics) {
  std::map<std::string, double> result;
  if (!metrics.is_object() || !metrics.contains("histograms")) return result;
  for (const auto& [name, histogram] : metrics.at("histograms").as_object()) {
    if (name.rfind("mpilite.", 0) != 0 || name.size() < 11 ||
        name.compare(name.size() - 2, 2, "_s") != 0) {
      continue;
    }
    result[name.substr(8, name.size() - 10)] =
        histogram.get_double("sum", 0.0);
  }
  return result;
}

std::vector<Span> top_spans(const TraceModel& model, std::size_t k) {
  std::vector<Span> spans;
  for (const Span& span : model.spans) {
    if (span.category != "phase") spans.push_back(span);
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.duration_hours != b.duration_hours) {
      return a.duration_hours > b.duration_hours;
    }
    return span_order(a, b);
  });
  if (spans.size() > k) spans.resize(k);
  return spans;
}

std::vector<SelfCheck> self_checks(const TraceModel& model,
                                   const Json& metrics) {
  std::vector<SelfCheck> checks;

  {
    SelfCheck check;
    check.name = "critical-path-bounded";
    check.ok = true;
    std::size_t phases = 0;
    for (const PhasePath& path : critical_paths(model)) {
      ++phases;
      if (path.total_hours >
          path.duration_hours + slack_for(path.duration_hours)) {
        check.ok = false;
        check.detail += "phase '" + path.name + "': path " +
                        fmt(path.total_hours) + " h exceeds duration " +
                        fmt(path.duration_hours) + " h; ";
      }
    }
    if (check.ok) {
      check.detail = std::to_string(phases) +
                     " phase(s), every critical path within its window";
    }
    checks.push_back(std::move(check));
  }

  {
    // Busy node-hours from the DES job spans must reproduce the recorded
    // utilization gauge: utilization = busy / (nodes * makespan).
    SelfCheck check;
    check.name = "busy-vs-utilization";
    double busy_node_hours = 0.0;
    bool has_jobs = false;
    for (const Span& span : model.spans) {
      if (span.category == "job" || span.category == "job.killed") {
        has_jobs = true;
        busy_node_hours += span.duration_hours * span.nodes;
      }
    }
    const bool has_gauges =
        metrics.is_object() && metrics.contains("gauges") &&
        metrics.at("gauges").contains("nightly.utilization") &&
        metrics.at("gauges").contains("nightly.makespan_hours");
    if (!has_jobs || !has_gauges || model.slurm_total_nodes <= 0.0) {
      check.ok = true;
      check.detail = "skipped: no DES job spans / utilization gauges";
    } else {
      const Json& gauges = metrics.at("gauges");
      const double utilization =
          gauges.at("nightly.utilization").as_double();
      const double makespan =
          gauges.at("nightly.makespan_hours").as_double();
      const double expected =
          utilization * model.slurm_total_nodes * makespan;
      const double error = std::abs(busy_node_hours - expected) /
                           std::max(std::abs(expected), 1e-12);
      check.ok = error <= 1e-6;
      check.detail = "job spans: " + fmt(busy_node_hours) +
                     " busy node-hours; utilization gauge implies " +
                     fmt(expected) + " (rel err " + fmt(error) + ")";
    }
    checks.push_back(std::move(check));
  }
  return checks;
}

Json summarize(const TraceModel& model, const Json& metrics,
               std::size_t top_k) {
  JsonObject doc;

  {
    JsonObject trace;
    trace["events"] = static_cast<std::uint64_t>(model.events);
    trace["spans"] = static_cast<std::uint64_t>(model.spans.size());
    trace["instants"] = static_cast<std::uint64_t>(model.instants);
    trace["counter_samples"] =
        static_cast<std::uint64_t>(model.counter_samples);
    trace["flow_chains"] = static_cast<std::uint64_t>(model.flow_chains);
    JsonObject processes;
    for (const auto& [pid, name] : model.process_names) {
      processes[name] = static_cast<std::uint64_t>(pid);
    }
    trace["processes"] = Json(std::move(processes));
    doc["trace"] = Json(std::move(trace));
  }

  JsonArray phases;
  for (const PhasePath& path : critical_paths(model)) {
    JsonObject entry;
    entry["name"] = path.name;
    entry["site"] = path.site;
    entry["start_hours"] = path.start_hours;
    entry["duration_hours"] = path.duration_hours;
    entry["critical_path_hours"] = path.total_hours;
    JsonArray spans;
    for (const PathSpan& span : path.spans) {
      JsonObject s;
      s["process"] = span.process;
      s["tid"] = static_cast<std::uint64_t>(span.tid);
      s["name"] = span.name;
      s["start_hours"] = span.start_hours;
      s["duration_hours"] = span.duration_hours;
      s["self_hours"] = span.self_hours;
      spans.push_back(Json(std::move(s)));
    }
    entry["spans"] = Json(std::move(spans));
    phases.push_back(Json(std::move(entry)));
  }
  doc["phases"] = Json(std::move(phases));

  JsonArray lanes;
  for (const LaneBusy& lane : lane_busy(model)) {
    JsonObject entry;
    entry["process"] = lane.process;
    entry["tid"] = static_cast<std::uint64_t>(lane.tid);
    entry["thread"] = lane.thread;
    entry["busy_hours"] = lane.busy_hours;
    lanes.push_back(Json(std::move(entry)));
  }
  doc["lanes"] = Json(std::move(lanes));

  JsonArray imbalances;
  for (const Imbalance& entry : imbalance(model)) {
    JsonObject e;
    e["process"] = entry.process;
    e["lanes"] = static_cast<std::uint64_t>(entry.lanes);
    e["max_busy_hours"] = entry.max_busy_hours;
    e["mean_busy_hours"] = entry.mean_busy_hours;
    e["ratio"] = entry.ratio;
    imbalances.push_back(Json(std::move(e)));
  }
  doc["imbalance"] = Json(std::move(imbalances));

  {
    JsonObject categories;
    for (const auto& [category, hours] : category_hours(model)) {
      categories[category] = hours;
    }
    doc["category_hours"] = Json(std::move(categories));
  }
  {
    JsonObject collectives;
    for (const auto& [op, seconds] : collective_wait_seconds(metrics)) {
      collectives[op] = seconds;
    }
    doc["collective_wait_s"] = Json(std::move(collectives));
  }

  JsonArray top;
  for (const Span& span : top_spans(model, top_k)) {
    JsonObject entry;
    entry["process"] = model.process(span.pid);
    entry["tid"] = static_cast<std::uint64_t>(span.tid);
    entry["name"] = span.name;
    entry["category"] = span.category;
    entry["start_hours"] = span.start_hours;
    entry["duration_hours"] = span.duration_hours;
    top.push_back(Json(std::move(entry)));
  }
  doc["top_spans"] = Json(std::move(top));

  JsonArray checks;
  bool all_ok = true;
  for (const SelfCheck& check : self_checks(model, metrics)) {
    all_ok = all_ok && check.ok;
    JsonObject entry;
    entry["name"] = check.name;
    entry["ok"] = check.ok;
    entry["detail"] = check.detail;
    checks.push_back(Json(std::move(entry)));
  }
  doc["self_checks"] = Json(std::move(checks));
  doc["self_checks_ok"] = all_ok;
  return Json(std::move(doc));
}

std::string render_text(const Json& summary) {
  std::string out;
  const Json& trace = summary.at("trace");
  out += "trace: " + std::to_string(trace.at("events").as_int()) +
         " events, " + std::to_string(trace.at("spans").as_int()) +
         " spans, " + std::to_string(trace.at("flow_chains").as_int()) +
         " flow chains, " +
         std::to_string(trace.at("counter_samples").as_int()) +
         " counter samples\n";

  out += "\ncritical path per phase:\n";
  for (const Json& phase : summary.at("phases").as_array()) {
    out += "  " + phase.at("name").as_string() + " @" +
           phase.at("site").as_string() + ": " +
           fmt(phase.at("critical_path_hours").as_double()) + " h of " +
           fmt(phase.at("duration_hours").as_double()) + " h\n";
    for (const Json& span : phase.at("spans").as_array()) {
      out += "    - " + span.at("name").as_string() + " (" +
             span.at("process").as_string() + "/" +
             std::to_string(span.at("tid").as_int()) + "): " +
             fmt(span.at("duration_hours").as_double()) + " h, self " +
             fmt(span.at("self_hours").as_double()) + " h\n";
    }
  }

  out += "\nlane imbalance (max vs mean busy hours):\n";
  for (const Json& entry : summary.at("imbalance").as_array()) {
    out += "  " + entry.at("process").as_string() + ": " +
           std::to_string(entry.at("lanes").as_int()) + " lane(s), max " +
           fmt(entry.at("max_busy_hours").as_double()) + " h, mean " +
           fmt(entry.at("mean_busy_hours").as_double()) + " h, ratio " +
           fmt(entry.at("ratio").as_double()) + "\n";
  }

  out += "\ntime by category (h):\n";
  for (const auto& [category, hours] :
       summary.at("category_hours").as_object()) {
    out += "  " + category + ": " + fmt(hours.as_double()) + "\n";
  }
  const JsonObject& collectives = summary.at("collective_wait_s").as_object();
  if (!collectives.empty()) {
    out += "\ncollective wait (s, from metrics histograms):\n";
    for (const auto& [op, seconds] : collectives) {
      out += "  " + op + ": " + fmt(seconds.as_double()) + "\n";
    }
  }

  out += "\ntop spans:\n";
  for (const Json& span : summary.at("top_spans").as_array()) {
    out += "  " + span.at("name").as_string() + " (" +
           span.at("process").as_string() + "/" +
           std::to_string(span.at("tid").as_int()) + ", " +
           span.at("category").as_string() + "): " +
           fmt(span.at("duration_hours").as_double()) + " h\n";
  }

  out += "\nself-checks:\n";
  for (const Json& check : summary.at("self_checks").as_array()) {
    out += std::string("  [") + (check.at("ok").as_bool() ? "ok" : "FAIL") +
           "] " + check.at("name").as_string() + ": " +
           check.at("detail").as_string() + "\n";
  }
  return out;
}

namespace {

/// Appends "name: a -> b (+x%)" rows for every numeric member that
/// differs between two flat JSON objects (missing members count as
/// differing).
void diff_numeric_members(const std::string& label, const Json& a,
                          const Json& b, std::string& out) {
  std::set<std::string> keys;
  for (const auto& [key, value] : a.as_object()) keys.insert(key);
  for (const auto& [key, value] : b.as_object()) keys.insert(key);
  for (const std::string& key : keys) {
    const bool in_a = a.contains(key);
    const bool in_b = b.contains(key);
    if (in_a && in_b) {
      if (!a.at(key).is_number() || !b.at(key).is_number()) continue;
      const double va = a.at(key).as_double();
      const double vb = b.at(key).as_double();
      if (va == vb) continue;
      const double rel = (vb - va) / std::max(std::abs(va), 1e-12);
      out += "  " + label + " " + key + ": " + fmt(va) + " -> " + fmt(vb) +
             " (" + fmt_pct(rel) + ")\n";
    } else {
      out += "  " + label + " " + key + ": " +
             (in_a ? "only in first run" : "only in second run") + "\n";
    }
  }
}

}  // namespace

std::string render_diff(const Json& summary_a, const Json& summary_b,
                        const Json& metrics_a, const Json& metrics_b) {
  std::string out;

  out += "phases:\n";
  std::map<std::string, const Json*> phases_a, phases_b;
  for (const Json& phase : summary_a.at("phases").as_array()) {
    phases_a[phase.at("name").as_string()] = &phase;
  }
  for (const Json& phase : summary_b.at("phases").as_array()) {
    phases_b[phase.at("name").as_string()] = &phase;
  }
  std::set<std::string> names;
  for (const auto& [name, phase] : phases_a) names.insert(name);
  for (const auto& [name, phase] : phases_b) names.insert(name);
  for (const std::string& name : names) {
    const auto ita = phases_a.find(name);
    const auto itb = phases_b.find(name);
    if (ita == phases_a.end() || itb == phases_b.end()) {
      out += "  " + name + ": " +
             (ita != phases_a.end() ? "only in first run"
                                    : "only in second run") +
             "\n";
      continue;
    }
    const double da = ita->second->at("duration_hours").as_double();
    const double db = itb->second->at("duration_hours").as_double();
    const double ca = ita->second->at("critical_path_hours").as_double();
    const double cb = itb->second->at("critical_path_hours").as_double();
    out += "  " + name + ": duration " + fmt(da) + " -> " + fmt(db);
    if (da != db) {
      out += " (" + fmt_pct((db - da) / std::max(std::abs(da), 1e-12)) + ")";
    }
    out += ", critical path " + fmt(ca) + " -> " + fmt(cb) + "\n";
  }

  out += "metrics:\n";
  const Json empty = Json(JsonObject{});
  auto section = [&](const char* name, const Json& doc) -> const Json& {
    return doc.is_object() && doc.contains(name) ? doc.at(name) : empty;
  };
  diff_numeric_members("counter", section("counters", metrics_a),
                       section("counters", metrics_b), out);
  diff_numeric_members("gauge", section("gauges", metrics_a),
                       section("gauges", metrics_b), out);
  return out;
}

namespace {

double tolerance_for(const Json& tolerances, const std::string& bench,
                     const std::string& metric) {
  constexpr double kDefault = 0.05;
  if (!tolerances.is_object()) return kDefault;
  if (tolerances.contains("overrides") &&
      tolerances.at("overrides").is_object()) {
    const Json& overrides = tolerances.at("overrides");
    const std::string key = bench + "." + metric;
    if (overrides.contains(key)) return overrides.at(key).as_double();
  }
  return tolerances.get_double("default", kDefault);
}

}  // namespace

BenchDiffResult bench_diff(const std::string& baseline_dir,
                           const std::string& candidate_dir) {
  namespace fs = std::filesystem;
  BenchDiffResult result;
  EPI_REQUIRE(fs::is_directory(baseline_dir),
              "baseline directory '" << baseline_dir << "' does not exist");

  Json tolerances = Json(JsonObject{});
  const fs::path tolerance_path = fs::path(baseline_dir) / "tolerances.json";
  if (fs::exists(tolerance_path)) {
    tolerances = read_json_file(tolerance_path.string());
  }

  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 11 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      files.push_back(name);
    }
  }
  std::sort(files.begin(), files.end());

  bool all_ok = !files.empty();
  for (const std::string& file : files) {
    ++result.benches;
    const Json baseline =
        read_json_file((fs::path(baseline_dir) / file).string());
    const std::string bench = baseline.get_string("bench", file);
    const fs::path candidate_path = fs::path(candidate_dir) / file;
    if (!fs::exists(candidate_path)) {
      BenchDelta delta;
      delta.bench = bench;
      delta.metric = "*";
      delta.ok = false;
      delta.note = "missing in candidate: " + candidate_path.string();
      all_ok = false;
      result.deltas.push_back(std::move(delta));
      continue;
    }
    const Json candidate = read_json_file(candidate_path.string());
    const Json& base_metrics = baseline.at("metrics");
    for (const auto& [metric, value] : base_metrics.as_object()) {
      BenchDelta delta;
      delta.bench = bench;
      delta.metric = metric;
      delta.baseline = value.as_double();
      delta.tolerance = tolerance_for(tolerances, bench, metric);
      if (!candidate.contains("metrics") ||
          !candidate.at("metrics").contains(metric)) {
        delta.ok = false;
        delta.note = "missing in candidate";
      } else {
        delta.candidate = candidate.at("metrics").at(metric).as_double();
        delta.relative = std::abs(delta.candidate - delta.baseline) /
                         std::max(std::abs(delta.baseline), 1e-12);
        delta.ok = delta.relative <= delta.tolerance;
      }
      all_ok = all_ok && delta.ok;
      result.deltas.push_back(std::move(delta));
    }
  }
  result.ok = all_ok;
  return result;
}

std::string render_bench_diff(const BenchDiffResult& result) {
  std::string out;
  if (result.benches == 0) {
    out += "no BENCH_*.json baselines found\n";
  }
  std::string current_bench;
  for (const BenchDelta& delta : result.deltas) {
    if (delta.bench != current_bench) {
      current_bench = delta.bench;
      out += current_bench + ":\n";
    }
    if (!delta.note.empty()) {
      out += "  [FAIL] " + delta.metric + ": " + delta.note + "\n";
      continue;
    }
    out += std::string("  [") + (delta.ok ? "ok" : "FAIL") + "] " +
           delta.metric + ": " + fmt(delta.baseline) + " -> " +
           fmt(delta.candidate) + " (rel " + fmt(delta.relative) +
           ", tol " + fmt(delta.tolerance) + ")\n";
  }
  out += result.ok ? "bench-diff: PASS\n" : "bench-diff: FAIL\n";
  return out;
}

}  // namespace epi::epitrace
