// epitrace — the analysis half of observability.
//
// src/obs/ records; this library answers. It loads a trace.json /
// metrics.json pair produced by an obs::Session, reconstructs the span
// DAG, and computes the quantities a perf investigation starts from:
//
//   - the critical path per workflow phase (longest chain of
//     non-overlapping spans inside the phase window, with per-span
//     self-time) — by construction its total never exceeds the phase
//     duration, which doubles as a self-check of the implementation;
//   - per-lane busy time (interval union, so nested spans do not double
//     count) and max-vs-mean lane imbalance per trace process;
//   - blocked-time attribution: per-category span totals (compute vs WAN
//     vs DES jobs) plus the mpilite collective-wait histograms from
//     metrics.json;
//   - top-K spans by duration;
//   - consistency self-checks (critical path <= phase wall time; job-span
//     busy node-hours vs the recorded utilization gauge);
//   - a machine-readable JSON summary of all of the above.
//
// It also implements the perf-regression gate: diffing BENCH_<name>.json
// reports against committed baselines (bench/baselines/) under
// per-metric relative tolerances (tolerances.json), used by the ci.sh
// `obs` lane and `epitrace diff`.
//
// Everything here is deterministic: inputs are sorted documents, every
// ordering below has an explicit tie-break, and no wall clock is read.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace epi::epitrace {

/// One reconstructed span ('X', or a matched 'B'/'E' pair) in hours on
/// the simulated/workflow clock.
struct Span {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double start_hours = 0.0;
  double duration_hours = 0.0;
  std::string name;
  std::string category;
  /// The "nodes" arg of DES job spans (1 when absent): the width used for
  /// busy node-hour accounting.
  double nodes = 1.0;

  double end_hours() const { return start_hours + duration_hours; }
};

/// The loaded trace: spans, lane/process names, counts.
struct TraceModel {
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names;
  std::vector<Span> spans;  // sorted by (start, end, pid, tid, name)
  std::size_t events = 0;
  std::size_t instants = 0;
  std::size_t counter_samples = 0;
  std::size_t flow_chains = 0;  // completed 's'..'f' chains
  /// Total cluster nodes from the first "slurm.nodes" counter sample
  /// (busy + down + free); 0 when the trace has no DES counters.
  double slurm_total_nodes = 0.0;

  const std::string& process(std::uint32_t pid) const;
};

/// Parses a trace document (throws epi::Error when malformed; run
/// obs::check_trace_json first for a full error list).
TraceModel load_trace(const Json& doc);
TraceModel load_trace_file(const std::string& path);

/// One span on a phase's critical path.
struct PathSpan {
  std::string process;
  std::uint32_t tid = 0;
  std::string name;
  double start_hours = 0.0;
  double duration_hours = 0.0;
  /// duration minus the interval union of spans nested inside it on the
  /// same lane — the time the span itself was on the clock.
  double self_hours = 0.0;
};

/// The critical path of one workflow phase: the maximum-total-duration
/// chain of pairwise non-overlapping spans (a ends before b starts) fully
/// inside the phase window, across every process. total_hours <=
/// duration_hours always holds (the chain fits inside the window).
struct PhasePath {
  std::string name;
  std::string site;  // process the phase span lives on
  double start_hours = 0.0;
  double duration_hours = 0.0;
  double total_hours = 0.0;
  std::vector<PathSpan> spans;
};

/// Critical paths for every cat="phase" span, in phase start order.
std::vector<PhasePath> critical_paths(const TraceModel& model);

/// Busy time of one (pid, tid) lane: the interval union of its non-phase
/// spans (nesting and overlap count once).
struct LaneBusy {
  std::string process;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string thread;
  double busy_hours = 0.0;
};

std::vector<LaneBusy> lane_busy(const TraceModel& model);

/// Max-vs-mean lane busy time per process (lanes with at least one span).
struct Imbalance {
  std::string process;
  std::size_t lanes = 0;
  double max_busy_hours = 0.0;
  double mean_busy_hours = 0.0;
  double ratio = 1.0;  // max / mean; 1.0 when mean is 0
};

std::vector<Imbalance> imbalance(const TraceModel& model);

/// Per-category span-duration totals ("job", "exec", "transfer", ...):
/// the compute-vs-WAN-vs-DES half of blocked-time attribution. The
/// collective-wait half comes from the "mpilite.<op>_s" histogram sums in
/// metrics.json (collective_wait_seconds below).
std::map<std::string, double> category_hours(const TraceModel& model);

/// Sum of every "mpilite.<op>_s" histogram in a metrics document, keyed
/// by operation name; empty when none were recorded.
std::map<std::string, double> collective_wait_seconds(const Json& metrics);

/// The `k` longest spans, duration-descending (ties: start, pid, tid,
/// name).
std::vector<Span> top_spans(const TraceModel& model, std::size_t k);

/// One internal-consistency check over a loaded run.
struct SelfCheck {
  std::string name;
  bool ok = false;
  std::string detail;
};

/// Runs every applicable self-check:
///   - "critical-path-bounded": each phase's path total <= its duration;
///   - "busy-vs-utilization": job-span busy node-hours against the
///     nightly.utilization × nodes × makespan product recorded in
///     metrics.json (skipped with ok=true when the run has no DES trace).
std::vector<SelfCheck> self_checks(const TraceModel& model,
                                   const Json& metrics);

/// The machine-readable summary of one run directory (trace.json +
/// metrics.json): phases/critical paths, lanes, imbalance, categories,
/// collectives, top spans, self-check verdicts.
Json summarize(const TraceModel& model, const Json& metrics,
               std::size_t top_k = 10);

/// Renders a summary (as produced by summarize()) into the human-readable
/// text `epitrace report` prints. Returns the text; the caller owns
/// printing, keeping this library output-free.
std::string render_text(const Json& summary);

/// Renders the run-to-run comparison of two summaries for
/// `epitrace diff`: phase durations, critical paths, counters, and gauges
/// side by side with relative deltas.
std::string render_diff(const Json& summary_a, const Json& summary_b,
                        const Json& metrics_a, const Json& metrics_b);

// --- Perf-regression gate -------------------------------------------------

/// One metric's baseline-vs-candidate comparison.
struct BenchDelta {
  std::string bench;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double relative = 0.0;   // |candidate - baseline| / max(|baseline|, eps)
  double tolerance = 0.0;  // the tolerance this metric was held to
  bool ok = false;
  std::string note;  // "missing in candidate", ...
};

struct BenchDiffResult {
  bool ok = false;
  std::size_t benches = 0;
  std::vector<BenchDelta> deltas;  // (bench, metric) order
};

/// Diffs every BENCH_<name>.json in `baseline_dir` against its
/// counterpart in `candidate_dir` under the per-metric relative
/// tolerances of <baseline_dir>/tolerances.json ({"default": r,
/// "overrides": {"<bench>.<metric>": r}}; 0.05 when the file is absent).
/// A baseline bench missing from the candidate fails; extra candidate
/// benches are ignored.
BenchDiffResult bench_diff(const std::string& baseline_dir,
                           const std::string& candidate_dir);

/// Renders a BenchDiffResult as the text `epitrace bench-diff` prints.
std::string render_bench_diff(const BenchDiffResult& result);

}  // namespace epi::epitrace
