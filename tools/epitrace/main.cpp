// epitrace — causal-trace profiler and perf-regression gate.
//
// Usage:
//   epitrace report <run_dir> [--json] [--check] [--top K]
//   epitrace diff <a> <b>
//   epitrace bench-diff [<baseline_dir>] <candidate_dir>
//
// `report` loads <run_dir>/trace.json (+ metrics.json when present) and
// prints the critical path per phase, lane imbalance, blocked-time
// attribution, and top spans; --json prints the machine-readable summary
// instead, and --check exits 1 unless every self-check passes.
//
// `diff` compares two directories. When both hold BENCH_*.json reports it
// runs the tolerance-gated baseline comparison (exit 1 on regression —
// the CI perf gate); when they hold trace.json run outputs it prints an
// informational run-to-run comparison.
//
// `bench-diff` is the explicit gate form; the baseline directory defaults
// to $EPI_BENCH_BASELINE_DIR, falling back to bench/baselines.
//
// Exit codes: 0 ok, 1 failed check or regression, 2 usage/load error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "epitrace/epitrace.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using epi::Json;
using epi::JsonObject;

int usage() {
  std::fputs(
      "usage: epitrace report <run_dir> [--json] [--check] [--top K]\n"
      "       epitrace diff <a> <b>\n"
      "       epitrace bench-diff [<baseline_dir>] <candidate_dir>\n",
      stderr);
  return 2;
}

/// Loads <dir>/metrics.json, or an empty object when the run has none.
Json load_metrics(const std::string& dir) {
  const auto path = std::filesystem::path(dir) / "metrics.json";
  if (!std::filesystem::exists(path)) return Json(JsonObject{});
  return epi::read_json_file(path.string());
}

bool has_bench_reports(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) return false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      return true;
    }
  }
  return false;
}

int run_report(const std::vector<std::string>& args) {
  std::string dir;
  bool as_json = false;
  bool check = false;
  std::size_t top_k = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (dir.empty()) {
      dir = args[i];
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();

  const auto trace_path = std::filesystem::path(dir) / "trace.json";
  const epi::epitrace::TraceModel model =
      epi::epitrace::load_trace_file(trace_path.string());
  const Json metrics = load_metrics(dir);
  const Json summary = epi::epitrace::summarize(model, metrics, top_k);
  if (as_json) {
    const std::string text = summary.dump(2);
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    const std::string text = epi::epitrace::render_text(summary);
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  if (check && !summary.at("self_checks_ok").as_bool()) {
    std::fputs("epitrace: self-checks FAILED\n", stderr);
    return 1;
  }
  return 0;
}

int run_diff(const std::string& a, const std::string& b) {
  if (has_bench_reports(a)) {
    // Bench mode: tolerance-gated regression comparison, a = baselines.
    const epi::epitrace::BenchDiffResult result =
        epi::epitrace::bench_diff(a, b);
    const std::string text = epi::epitrace::render_bench_diff(result);
    std::fwrite(text.data(), 1, text.size(), stdout);
    return result.ok ? 0 : 1;
  }
  const epi::epitrace::TraceModel model_a = epi::epitrace::load_trace_file(
      (std::filesystem::path(a) / "trace.json").string());
  const epi::epitrace::TraceModel model_b = epi::epitrace::load_trace_file(
      (std::filesystem::path(b) / "trace.json").string());
  const Json metrics_a = load_metrics(a);
  const Json metrics_b = load_metrics(b);
  const std::string text = epi::epitrace::render_diff(
      epi::epitrace::summarize(model_a, metrics_a),
      epi::epitrace::summarize(model_b, metrics_b), metrics_a, metrics_b);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int run_bench_diff(const std::vector<std::string>& args) {
  std::string baseline_dir;
  std::string candidate_dir;
  if (args.size() == 2) {
    baseline_dir = args[0];
    candidate_dir = args[1];
  } else if (args.size() == 1) {
    const char* env_dir = epi::env_raw("EPI_BENCH_BASELINE_DIR");
    baseline_dir = env_dir != nullptr ? env_dir : "bench/baselines";
    candidate_dir = args[0];
  } else {
    return usage();
  }
  const epi::epitrace::BenchDiffResult result =
      epi::epitrace::bench_diff(baseline_dir, candidate_dir);
  const std::string text = epi::epitrace::render_bench_diff(result);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string command = args.front();
  args.erase(args.begin());
  try {
    if (command == "report") return run_report(args);
    if (command == "diff") {
      if (args.size() != 2) return usage();
      return run_diff(args[0], args[1]);
    }
    if (command == "bench-diff") return run_bench_diff(args);
  } catch (const std::exception& error) {
    std::fputs("epitrace: ", stderr);
    std::fputs(error.what(), stderr);
    std::fputc('\n', stderr);
    return 2;
  }
  return usage();
}
