#!/usr/bin/env bash
# Determinism lint — the fast first stage of ci.sh.
#
# Nightly calibration cycles must be replayable: the same inputs must
# produce byte-identical outputs across runs and machines. This script
# fails CI on the three classic ways C++ code loses that property:
#
#   1. libc randomness (std::rand/srand/random_shuffle) instead of the
#      seeded epi::Rng;
#   2. wall-clock reads (time(), system_clock, localtime, ...) outside
#      util/timer.hpp, the one sanctioned timing helper (steady_clock,
#      measurement only — never simulation state);
#   3. direct iteration of std::unordered_map/std::unordered_set in
#      report- or output-emitting files: hash order is unspecified and
#      differs across libstdc++ versions and ASLR runs, so anything
#      emitted from such a loop is nondeterministic.
#
# It also fails on raw stderr writes (std::cerr / fprintf(stderr, ...))
# anywhere in src/ outside src/util/log.cpp: diagnostics must go through
# the leveled logger so EPI_LOG_LEVEL and set_log_sink() govern every
# line the workflow emits.
#
# If clang-tidy is installed, the .clang-tidy config is also run over the
# mpilite sources as a deeper (but slower) second opinion.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }

# --- 1. Banned randomness sources (all of src/) -------------------------
banned_random='\b(std::rand|std::srand|random_shuffle)\b|(^|[^[:alnum:]_.:])s?rand\('
hits="$(grep -rnE "$banned_random" src --include='*.cpp' --include='*.hpp' || true)"
if [[ -n "$hits" ]]; then
  note "lint: banned randomness source (use the seeded epi::Rng instead):"
  note "$hits"
  fail=1
fi

# --- 2. Wall-clock reads outside util/timer.hpp -------------------------
wall_clock='\b(std::time\b|time\(NULL\)|time\(nullptr\)|time\(0\)|system_clock|high_resolution_clock|localtime|gmtime|strftime|asctime|ctime\b|clock\(\)|gettimeofday)'
hits="$(grep -rnE "$wall_clock" src --include='*.cpp' --include='*.hpp' \
        | grep -v '^src/util/timer.hpp:' || true)"
if [[ -n "$hits" ]]; then
  note "lint: wall-clock read outside util/timer.hpp (simulation state must"
  note "      never depend on real time; use epi::Timer for measurement):"
  note "$hits"
  fail=1
fi

# --- 3. Raw stderr writes outside the logger ----------------------------
raw_stderr='std::cerr|fprintf\(stderr'
hits="$(grep -rnE "$raw_stderr" src --include='*.cpp' --include='*.hpp' \
        | grep -v '^src/util/log.cpp:' | grep -v '^src/obs/' || true)"
if [[ -n "$hits" ]]; then
  note "lint: raw stderr write outside src/util/log.cpp (use EPI_WARN/"
  note "      EPI_ERROR so EPI_LOG_LEVEL and set_log_sink() apply):"
  note "$hits"
  fail=1
fi

# --- 4. Unordered-container iteration in output-emitting files ----------
# Files that format reports, tables, logs, or serialized output. A
# declaration like `std::unordered_map<K, V> name` is harvested from the
# file and its paired header, then any range-for over (or .begin() walk
# of) that name is flagged.
output_files() {
  ls src/analytics/*.cpp src/analytics/*.hpp \
     src/workflow/*.cpp src/workflow/*.hpp \
     src/service/*.cpp src/service/*.hpp \
     src/surveillance/*.cpp src/surveillance/*.hpp \
     src/util/csv.cpp src/util/csv.hpp \
     src/util/json.cpp src/util/json.hpp \
     src/util/log.cpp src/util/log.hpp \
     src/obs/*.cpp src/obs/*.hpp \
     src/exec/*.cpp src/exec/*.hpp \
     src/cluster/slurm_sim.cpp 2>/dev/null
}

unordered_names() {
  # Variable/member names declared with an unordered container type in $1.
  grep -hoE 'unordered_(map|set)<[^;{}]*>[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*[;={(]' "$@" 2>/dev/null \
    | grep -oE '[A-Za-z_][A-Za-z0-9_]*[[:space:]]*[;={(]$' \
    | grep -oE '^[A-Za-z_][A-Za-z0-9_]*' | sort -u
}

for f in $(output_files); do
  # Harvest declarations from the file plus its paired header/source so
  # members declared in the .hpp are caught when iterated in the .cpp.
  pair=""
  case "$f" in
    *.cpp) [[ -f "${f%.cpp}.hpp" ]] && pair="${f%.cpp}.hpp" ;;
    *.hpp) [[ -f "${f%.hpp}.cpp" ]] && pair="${f%.hpp}.cpp" ;;
  esac
  names="$(unordered_names "$f" $pair)"
  [[ -z "$names" ]] && continue
  for name in $names; do
    hits="$(grep -nE "for[[:space:]]*\(.*:[[:space:]&(]*${name}\b|\b${name}\.(begin|cbegin)\(\)" "$f" || true)"
    if [[ -n "$hits" ]]; then
      note "lint: $f iterates unordered container '$name' in an output-emitting"
      note "      file; iterate a sorted/ordered structure instead:"
      note "$hits" | sed "s|^|      $f:|"
      fail=1
    fi
  done
done

# --- 5. clang-tidy (optional deeper pass) -------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f build/compile_commands.json ]]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if ! clang-tidy -p build --quiet src/mpilite/*.cpp src/analytics/*.cpp; then
    note "lint: clang-tidy reported problems"
    fail=1
  fi
else
  note "lint: clang-tidy not installed; skipping the .clang-tidy pass"
fi

if [[ "$fail" -ne 0 ]]; then
  note "lint: FAILED"
  exit 1
fi
note "lint: OK"
