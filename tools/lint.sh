#!/usr/bin/env bash
# Static-analysis lint — the fast first stage of ci.sh.
#
# The heavy lifting lives in tools/epilint/, a tokenizer-based C++
# analyzer built as part of this repo (no external dependencies). It
# replaces the regex stages this script used to carry with semantic
# rules over a real token stream: determinism taint from output seeds to
# randomness/wall-clock/unordered-iteration sinks, unordered-container
# iteration from parsed declarations, mpilite misuse (tag mismatches,
# rank-divergent collectives, Runtime entry points), env-var hygiene
# against the kEnvRegistry table in util/env.hpp, and logging/IO hygiene
# (raw stderr/stdout, non-hexfloat formatting in report paths). See
# DESIGN.md §12 for the rule catalogue and the waiver policy.
#
# This script is a thin wrapper: build the analyzer, run it over all of
# src/ with the checked-in baseline (kept empty), then — when installed —
# run clang-tidy with the repo .clang-tidy profile over all of src/ as a
# deeper second opinion.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# --- 1. epilint (semantic determinism & comm-safety analysis) -----------
if [[ ! -f build/CMakeCache.txt ]]; then
  cmake -B build -S . >/dev/null
fi
cmake --build build -j "$JOBS" --target epilint >/dev/null
if ! ./build/tools/epilint --include-dir src --include-dir tools \
    --baseline tools/epilint/baseline.txt src tools/epitrace; then
  echo "lint: FAILED (epilint findings above; fix at the source or add an"
  echo "      inline '// epilint: allow(<rule>) — <why>' waiver)"
  exit 1
fi

# --- 2. clang-tidy (optional deeper pass, all of src/) ------------------
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported unconditionally by the top-level
  # CMakeLists.txt, so the configure above already produced it.
  if ! clang-tidy -p build --quiet src/*/*.cpp; then
    echo "lint: clang-tidy reported problems"
    echo "lint: FAILED"
    exit 1
  fi
else
  echo "lint: clang-tidy not installed; skipping the .clang-tidy pass"
fi

echo "lint: OK"
