// trace_check — CI validator for emitted observability files.
//
// Usage: trace_check <trace.json> [metrics.json ...]
//
// Each argument ending in "metrics.json" is checked as a metrics
// snapshot; everything else as a Chrome trace_event document (see
// src/obs/trace_check.hpp for the exact structural rules). Prints one
// summary line per file and exits non-zero if any file fails, so a CI
// step can validate a recorded run with no extra tooling.
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/trace_check.hpp"

namespace {

bool is_metrics_path(std::string_view path) {
  constexpr std::string_view kSuffix = "metrics.json";
  return path.size() >= kSuffix.size() &&
         path.substr(path.size() - kSuffix.size()) == kSuffix;
}

void print_errors(const std::vector<std::string>& errors) {
  for (const std::string& error : errors) {
    std::printf("    error: %s\n", error.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: trace_check <trace.json> [metrics.json ...]\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    if (is_metrics_path(path)) {
      const epi::obs::MetricsCheckResult result =
          epi::obs::check_metrics_file(path);
      std::printf("%s: %s (%zu counters, %zu gauges, %zu histograms)\n",
                  path.c_str(), result.ok ? "OK" : "FAIL", result.counters,
                  result.gauges, result.histograms);
      print_errors(result.errors);
      all_ok = all_ok && result.ok;
    } else {
      const epi::obs::TraceCheckResult result =
          epi::obs::check_trace_file(path);
      std::printf(
          "%s: %s (%zu events: %zu spans, %zu instants, %zu counter samples,"
          " %zu processes)\n",
          path.c_str(), result.ok ? "OK" : "FAIL", result.events, result.spans,
          result.instants, result.counters, result.processes);
      print_errors(result.errors);
      all_ok = all_ok && result.ok;
    }
  }
  return all_ok ? 0 : 1;
}
